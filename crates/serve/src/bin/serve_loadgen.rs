//! `serve_loadgen` — load-generator harness for `tsg-serve`.
//!
//! Drives N concurrent keep-alive connections against a running server,
//! sending deterministic synthetic series to `POST /models/{name}/classify`,
//! and reports sustained throughput plus latency percentiles — so serving
//! performance is measured the same way the motif kernel already is
//! (numbers first, then tuning).
//!
//! ```sh
//! serve_loadgen --addr 127.0.0.1:7878 [--model default] [--connections 8]
//!               [--requests 400] [--series-per-request 1] [--series-len 128]
//!               [--fit DATASET] [--config uvg-fast] [--seed 7]
//!               [--retries 3] [--chaos]
//! ```
//!
//! With `--fit DATASET` the model is fitted (or refitted) through the wire
//! API before the measurement starts. 429 responses are counted separately:
//! they are the server's backpressure working as designed, not a failure.
//! After the run the tool scrapes `/metrics` and prints the server-side
//! realized batch-size distribution, which shows how well micro-batching
//! coalesced the concurrent stream.
//!
//! Requests that hit backpressure, a reset connection or a timeout are
//! retried with capped exponential backoff and seeded jitter (`--retries`,
//! default 3); retried requests and give-ups are reported separately from
//! first-try successes. `--chaos` additionally makes the client itself
//! hostile on a seeded schedule — aborting connections mid-request and
//! stalling mid-body — to exercise the server's torn-input handling while
//! still asserting every *completed* request got a correct response.

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;
use tsg_serve::http;
use tsg_serve::json::Json;
use tsg_trace::Stage;

struct Args {
    addr: String,
    model: String,
    connections: usize,
    requests: usize,
    series_per_request: usize,
    series_len: usize,
    fit_dataset: Option<String>,
    config_name: String,
    seed: u64,
    max_instances: usize,
    max_length: usize,
    retries: usize,
    chaos: bool,
    json_out: Option<std::path::PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: String::new(),
        model: "default".to_string(),
        connections: 8,
        requests: 400,
        series_per_request: 1,
        series_len: 128,
        fit_dataset: None,
        config_name: "uvg-fast".to_string(),
        seed: 7,
        max_instances: 24,
        max_length: 128,
        retries: 3,
        chaos: false,
        json_out: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("flag `{}` needs a value", argv[*i - 1]))
    };
    let positive = |text: String, flag: &str| -> Result<usize, String> {
        text.parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("{flag} expects a positive number"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => args.addr = value(&mut i)?,
            "--model" => args.model = value(&mut i)?,
            "--connections" => args.connections = positive(value(&mut i)?, "--connections")?,
            "--requests" => args.requests = positive(value(&mut i)?, "--requests")?,
            "--series-per-request" => {
                args.series_per_request = positive(value(&mut i)?, "--series-per-request")?
            }
            "--series-len" => args.series_len = positive(value(&mut i)?, "--series-len")?,
            "--fit" => args.fit_dataset = Some(value(&mut i)?),
            "--config" => args.config_name = value(&mut i)?,
            "--max-instances" => args.max_instances = positive(value(&mut i)?, "--max-instances")?,
            "--max-length" => args.max_length = positive(value(&mut i)?, "--max-length")?,
            "--seed" => {
                args.seed = value(&mut i)?
                    .parse()
                    .map_err(|_| "--seed expects a number".to_string())?
            }
            "--retries" => {
                args.retries = value(&mut i)?
                    .parse::<usize>()
                    .map_err(|_| "--retries expects a number (0 disables)".to_string())?
            }
            "--chaos" => args.chaos = true,
            "--json-out" => args.json_out = Some(std::path::PathBuf::from(value(&mut i)?)),
            "--help" | "-h" => {
                println!(
                    "serve_loadgen: load generator for tsg-serve\n\n\
                     flags:\n  \
                     --addr HOST:PORT        server address (required)\n  \
                     --model NAME            model to classify against (default `default`)\n  \
                     --connections N         concurrent keep-alive connections (default 8)\n  \
                     --requests N            total requests across all connections (default 400)\n  \
                     --series-per-request N  series per classify request (default 1)\n  \
                     --series-len N          length of each synthetic series (default 128)\n  \
                     --fit DATASET           fit the model from this catalogue dataset first\n  \
                     --config NAME           preset for --fit (default uvg-fast)\n  \
                     --max-instances N       training budget for --fit (default 24)\n  \
                     --max-length N          training series length budget for --fit (default 128)\n  \
                     --seed N                series + fit seed (default 7)\n  \
                     --retries N             retries per request on 429/reset/timeout (default 3)\n  \
                     --chaos                 seeded client-side chaos: mid-request aborts + stalls\n  \
                     --json-out PATH         write a machine-readable benchmark artifact"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
        i += 1;
    }
    if args.addr.is_empty() {
        return Err("--addr is required".to_string());
    }
    Ok(args)
}

/// SplitMix64: small deterministic generator so the load is reproducible
/// without pulling the rand crates into the binary.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A plausible series: a sine of seeded frequency/phase plus seeded noise.
fn synthetic_series(seed: u64, len: usize) -> Vec<f64> {
    let mut state = seed;
    let unit = |state: &mut u64| (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64;
    let frequency = 4.0 + 28.0 * unit(&mut state);
    let phase = std::f64::consts::TAU * unit(&mut state);
    let noise = 0.05 + 0.3 * unit(&mut state);
    (0..len)
        .map(|t| {
            let angle = std::f64::consts::TAU * frequency * t as f64 / len as f64 + phase;
            angle.sin() + noise * (2.0 * unit(&mut state) - 1.0)
        })
        .collect()
}

#[derive(Default)]
struct WorkerStats {
    latencies_micros: Vec<u64>,
    ok: usize,
    backpressure: usize,
    errors: usize,
    /// Requests that succeeded only after at least one retry.
    retried: usize,
    /// Individual retry attempts (backoff sleeps taken).
    retry_attempts: usize,
    /// Requests abandoned after exhausting the retry budget.
    gave_up: usize,
    /// Client-side chaos: connections deliberately aborted mid-request.
    chaos_aborts: usize,
    /// Client-side chaos: requests dribbled with a mid-body stall.
    chaos_stalls: usize,
}

/// Capped exponential backoff with seeded jitter: 10 ms doubling to a
/// 250 ms ceiling, each sleep jittered ±50% off the worker's own stream so
/// concurrent workers never retry in lockstep.
fn backoff_sleep(attempt: usize, rng: &mut u64) {
    let base = 10u64.saturating_mul(1u64 << attempt.min(5)).min(250);
    let jitter = splitmix64(rng) % (base + 1);
    std::thread::sleep(std::time::Duration::from_millis(base / 2 + jitter / 2));
}

/// The request `http::send_request` would produce, as raw bytes — so chaos
/// mode can cut or stall the write at an arbitrary byte boundary.
fn raw_request_bytes(method: &str, path: &str, body: &Json) -> Vec<u8> {
    let payload = body.write();
    format!(
        "{method} {path} HTTP/1.1\r\nHost: tsg-serve\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{payload}",
        payload.len()
    )
    .into_bytes()
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank] as f64 / 1000.0
}

/// The value of the first metrics line starting with `line_prefix` (use a
/// trailing space or `{…}` label block to make the prefix exact).
fn scraped_value(text: &str, line_prefix: &str) -> Option<f64> {
    text.lines()
        .find(|l| l.starts_with(line_prefix))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

/// The per-stage latency breakdown from the server's
/// `tsg_serve_stage_seconds` histograms: `{stage: {count, total_seconds,
/// mean_ms}}` for every stage the server observed.
fn stage_breakdown_json(metrics: &str) -> Json {
    let mut stages = Vec::new();
    for stage in Stage::ALL {
        let label = format!("{{stage=\"{}\"}} ", stage.as_str());
        let count =
            scraped_value(metrics, &format!("tsg_serve_stage_seconds_count{label}")).unwrap_or(0.0);
        let total =
            scraped_value(metrics, &format!("tsg_serve_stage_seconds_sum{label}")).unwrap_or(0.0);
        if count > 0.0 {
            stages.push((
                stage.as_str(),
                Json::obj(vec![
                    ("count", Json::Num(count)),
                    ("total_seconds", Json::Num(total)),
                    ("mean_ms", Json::Num(1000.0 * total / count)),
                ]),
            ));
        }
    }
    Json::obj(stages)
}

fn connect(addr: &str) -> std::io::Result<(TcpStream, BufReader<TcpStream>)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    // a hung server must surface as a timeout error, never a stuck worker
    stream.set_read_timeout(Some(std::time::Duration::from_secs(30)))?;
    let reader = BufReader::new(stream.try_clone()?);
    Ok((stream, reader))
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    if let Some(dataset) = &args.fit_dataset {
        let (mut stream, mut reader) = match connect(&args.addr) {
            Ok(pair) => pair,
            Err(e) => {
                eprintln!("error: cannot connect to {}: {e}", args.addr);
                std::process::exit(1);
            }
        };
        let body = Json::obj(vec![
            ("dataset", Json::Str(dataset.clone())),
            ("config", Json::Str(args.config_name.clone())),
            ("seed", Json::Num(args.seed as f64)),
            ("max_instances", Json::Num(args.max_instances as f64)),
            ("max_length", Json::Num(args.max_length as f64)),
        ]);
        let path = format!("/models/{}/fit", args.model);
        match http::roundtrip_json(&mut stream, &mut reader, "POST", &path, Some(&body)) {
            Ok((200, info)) => println!(
                "fitted `{}` from {dataset}: {} features, {:.2} s",
                args.model,
                info.get("n_features")
                    .and_then(|v| v.as_f64())
                    .unwrap_or(0.0),
                info.get("fit_seconds")
                    .and_then(|v| v.as_f64())
                    .unwrap_or(0.0),
            ),
            Ok((status, body)) => {
                eprintln!("error: fit returned {status}: {body}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("error: fit request failed: {e}");
                std::process::exit(1);
            }
        }
    }

    let remaining = AtomicUsize::new(args.requests);
    let started = Instant::now();
    let stats: Vec<WorkerStats> = std::thread::scope(|scope| {
        (0..args.connections)
            .map(|worker| {
                let args = &args;
                let remaining = &remaining;
                scope.spawn(move || {
                    let mut stats = WorkerStats::default();
                    let Ok((mut stream, mut reader)) = connect(&args.addr) else {
                        stats.errors += 1;
                        return stats;
                    };
                    let path = format!("/models/{}/classify", args.model);
                    let mut request_index = 0u64;
                    // per-worker streams: one for backoff jitter, one for the
                    // chaos schedule — both seeded, so a run is reproducible
                    let mut jitter_rng = args.seed ^ ((worker as u64).wrapping_mul(0x9e37_79b9));
                    let mut chaos_rng = args
                        .seed
                        .wrapping_mul(0xa076_1d64_78bd_642f)
                        .wrapping_add(worker as u64);
                    while remaining
                        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                        .is_ok()
                    {
                        request_index += 1;
                        let series: Vec<Json> = (0..args.series_per_request)
                            .map(|s| {
                                let seed = args
                                    .seed
                                    .wrapping_add((worker as u64) << 40)
                                    .wrapping_add(request_index << 8)
                                    .wrapping_add(s as u64);
                                Json::nums(synthetic_series(seed, args.series_len))
                            })
                            .collect();
                        let body = Json::obj(vec![("series", Json::Arr(series))]);

                        // chaos: before the real request, maybe abort a torn
                        // request mid-write or dribble one with a stall — the
                        // server must survive both and still answer the real
                        // request on the (re)used connection afterwards
                        if args.chaos && splitmix64(&mut chaos_rng).is_multiple_of(4) {
                            let raw = raw_request_bytes("POST", &path, &body);
                            let cut = 1 + (splitmix64(&mut chaos_rng) as usize) % (raw.len() - 1);
                            if splitmix64(&mut chaos_rng).is_multiple_of(2) {
                                // torn request: write a prefix, slam the door
                                let _ = stream.write_all(&raw[..cut]);
                                let _ = stream.shutdown(std::net::Shutdown::Both);
                                stats.chaos_aborts += 1;
                                match connect(&args.addr) {
                                    Ok(pair) => (stream, reader) = pair,
                                    Err(_) => return stats,
                                }
                            } else {
                                // slow dribble: stall mid-body, then finish —
                                // this IS the real request, sent hostilely
                                stats.chaos_stalls += 1;
                                let sent = Instant::now();
                                let outcome = stream
                                    .write_all(&raw[..cut])
                                    .and_then(|()| {
                                        stream.flush()?;
                                        std::thread::sleep(std::time::Duration::from_millis(20));
                                        stream.write_all(&raw[cut..])?;
                                        stream.flush()
                                    })
                                    .and_then(|()| http::read_response(&mut reader));
                                match outcome {
                                    Ok((200, _)) => {
                                        stats
                                            .latencies_micros
                                            .push(sent.elapsed().as_micros() as u64);
                                        stats.ok += 1;
                                    }
                                    Ok((429, _)) => stats.backpressure += 1,
                                    Ok((status, _)) => {
                                        eprintln!("stalled request failed with {status}");
                                        stats.errors += 1;
                                    }
                                    Err(_) => {
                                        // the server may 408 + close a stall
                                        // that outlives its budget; reconnect
                                        match connect(&args.addr) {
                                            Ok(pair) => (stream, reader) = pair,
                                            Err(_) => return stats,
                                        }
                                    }
                                }
                                continue;
                            }
                        }

                        let mut attempt = 0usize;
                        loop {
                            let sent = Instant::now();
                            match http::roundtrip_json(
                                &mut stream,
                                &mut reader,
                                "POST",
                                &path,
                                Some(&body),
                            ) {
                                Ok((200, _)) => {
                                    stats
                                        .latencies_micros
                                        .push(sent.elapsed().as_micros() as u64);
                                    stats.ok += 1;
                                    if attempt > 0 {
                                        stats.retried += 1;
                                    }
                                    break;
                                }
                                Ok((429, _)) => {
                                    // backpressure: retry after a jittered
                                    // backoff, report a give-up when the
                                    // budget runs out
                                    if attempt < args.retries {
                                        attempt += 1;
                                        stats.retry_attempts += 1;
                                        backoff_sleep(attempt, &mut jitter_rng);
                                    } else {
                                        stats.backpressure += 1;
                                        if args.retries > 0 {
                                            stats.gave_up += 1;
                                        }
                                        break;
                                    }
                                }
                                Ok((status, body)) => {
                                    eprintln!("request failed with {status}: {body}");
                                    stats.errors += 1;
                                    break;
                                }
                                Err(e) => {
                                    // reset/timeout: reconnect, then retry
                                    // the same request on the fresh socket
                                    let reconnected = match connect(&args.addr) {
                                        Ok(pair) => {
                                            (stream, reader) = pair;
                                            true
                                        }
                                        Err(_) => false,
                                    };
                                    if reconnected && attempt < args.retries {
                                        attempt += 1;
                                        stats.retry_attempts += 1;
                                        backoff_sleep(attempt, &mut jitter_rng);
                                    } else {
                                        eprintln!("transport error: {e}");
                                        stats.errors += 1;
                                        stats.gave_up += 1;
                                        if !reconnected {
                                            return stats;
                                        }
                                        break;
                                    }
                                }
                            }
                        }
                    }
                    stats
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|handle| handle.join().expect("worker panicked"))
            .collect()
    });
    let elapsed = started.elapsed().as_secs_f64();

    let mut latencies: Vec<u64> = stats
        .iter()
        .flat_map(|s| s.latencies_micros.iter().copied())
        .collect();
    latencies.sort_unstable();
    let ok: usize = stats.iter().map(|s| s.ok).sum();
    let backpressure: usize = stats.iter().map(|s| s.backpressure).sum();
    let errors: usize = stats.iter().map(|s| s.errors).sum();
    let retried: usize = stats.iter().map(|s| s.retried).sum();
    let retry_attempts: usize = stats.iter().map(|s| s.retry_attempts).sum();
    let gave_up: usize = stats.iter().map(|s| s.gave_up).sum();
    let chaos_aborts: usize = stats.iter().map(|s| s.chaos_aborts).sum();
    let chaos_stalls: usize = stats.iter().map(|s| s.chaos_stalls).sum();
    let series_done = ok * args.series_per_request;

    println!(
        "serve_loadgen: {ok} ok / {backpressure} backpressure (429) / {errors} errors over {} connections in {elapsed:.2} s",
        args.connections
    );
    println!(
        "retries: {retried} requests recovered via {retry_attempts} attempt(s), {gave_up} gave up"
    );
    if args.chaos {
        println!("chaos: {chaos_aborts} torn requests (aborted mid-write), {chaos_stalls} stalled requests");
    }
    if ok > 0 {
        println!(
            "throughput: {:.1} req/s, {:.1} series/s",
            ok as f64 / elapsed,
            series_done as f64 / elapsed
        );
        println!(
            "latency: p50 {:.2} ms  p90 {:.2} ms  p99 {:.2} ms  max {:.2} ms",
            percentile(&latencies, 0.50),
            percentile(&latencies, 0.90),
            percentile(&latencies, 0.99),
            percentile(&latencies, 1.0),
        );
    }

    // scrape the realized batch-size distribution (and, for the JSON
    // artifact, the per-stage latency histograms) from the server
    let metrics_text: Option<String> =
        connect(&args.addr)
            .ok()
            .and_then(|(mut stream, mut reader)| {
                http::send_request(&mut stream, "GET", "/metrics", None).ok()?;
                match http::read_response(&mut reader) {
                    Ok((200, body)) => Some(String::from_utf8_lossy(&body).into_owned()),
                    _ => None,
                }
            });
    if let Some(text) = &metrics_text {
        println!("server batch-size distribution (from /metrics):");
        for line in text
            .lines()
            .filter(|l| l.starts_with("tsg_serve_batch_size"))
        {
            println!("  {line}");
        }
        println!("server robustness counters (from /metrics):");
        for line in text.lines().filter(|l| {
            l.starts_with("tsg_serve_requests_shed_total")
                || l.starts_with("tsg_serve_connections_reset_total")
                || l.starts_with("tsg_serve_faults_injected_total")
                || l.starts_with("tsg_serve_snapshot_load_failures_total")
        }) {
            println!("  {line}");
        }
    }

    if let Some(path) = &args.json_out {
        let counter = |name: &str| {
            metrics_text
                .as_deref()
                .and_then(|t| scraped_value(t, &format!("{name} ")))
                .map(Json::Num)
                .unwrap_or(Json::Null)
        };
        let artifact = Json::obj(vec![
            ("ok", Json::Num(ok as f64)),
            ("backpressure", Json::Num(backpressure as f64)),
            ("errors", Json::Num(errors as f64)),
            ("retried", Json::Num(retried as f64)),
            ("retry_attempts", Json::Num(retry_attempts as f64)),
            ("gave_up", Json::Num(gave_up as f64)),
            ("chaos_aborts", Json::Num(chaos_aborts as f64)),
            ("chaos_stalls", Json::Num(chaos_stalls as f64)),
            ("connections", Json::Num(args.connections as f64)),
            (
                "series_per_request",
                Json::Num(args.series_per_request as f64),
            ),
            ("elapsed_seconds", Json::Num(elapsed)),
            ("throughput_rps", Json::Num(ok as f64 / elapsed.max(1e-9))),
            (
                "throughput_series_per_s",
                Json::Num(series_done as f64 / elapsed.max(1e-9)),
            ),
            (
                "latency_ms",
                Json::obj(vec![
                    ("p50", Json::Num(percentile(&latencies, 0.50))),
                    ("p90", Json::Num(percentile(&latencies, 0.90))),
                    ("p99", Json::Num(percentile(&latencies, 0.99))),
                    ("max", Json::Num(percentile(&latencies, 1.0))),
                ]),
            ),
            (
                "stages",
                metrics_text
                    .as_deref()
                    .map(stage_breakdown_json)
                    .unwrap_or(Json::Null),
            ),
            (
                "server_counters",
                Json::obj(vec![
                    (
                        "faults_injected",
                        counter("tsg_serve_faults_injected_total"),
                    ),
                    (
                        "connections_reset",
                        counter("tsg_serve_connections_reset_total"),
                    ),
                    ("requests_shed", counter("tsg_serve_requests_shed_total")),
                    (
                        "snapshot_load_failures",
                        counter("tsg_serve_snapshot_load_failures_total"),
                    ),
                ]),
            ),
        ]);
        let mut payload = artifact.write();
        payload.push('\n');
        if let Err(e) = std::fs::write(path, payload) {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote json artifact to {}", path.display());
    }

    if ok == 0 || errors > 0 {
        std::process::exit(1);
    }
}
