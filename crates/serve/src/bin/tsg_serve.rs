//! `tsg-serve` — the batching classification server binary.
//!
//! ```sh
//! tsg-serve [--addr 127.0.0.1:7878] [--threads N] [--max-batch 32]
//!           [--max-wait-ms 2] [--queue-depth 256]
//!           [--preload NAME[,NAME...]] [--config fast|paper|uvg-fast|wide]
//!           [--prune K] [--max-instances N] [--max-length N] [--seed N]
//!           [--snapshot-dir DIR] [--request-budget-ms N]
//!           [--trace-capacity N]
//! ```
//!
//! `--preload` fits the named catalogue datasets before the listener starts
//! serving (model name = dataset name). `--addr 127.0.0.1:0` binds an
//! ephemeral port; the actual address is printed on the `listening on` line,
//! which scripts (and the CI smoke test) parse. Stop the server with
//! `POST /shutdown`.
//!
//! `--snapshot-dir` enables crash-safe model persistence: every successful
//! fit writes a hash-verified snapshot, the boot sequence warm-restarts from
//! whatever valid snapshots exist (skipping the refit for preloads already
//! restored), and corrupt snapshots are detected, reported and refitted —
//! never served.

use std::time::Duration;
use tsg_serve::registry::TrainingSource;
use tsg_serve::server::{ServeConfig, Server};

struct Args {
    serve: ServeConfig,
    preload: Vec<String>,
    config_name: String,
    seed: u64,
    prune: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        serve: ServeConfig::default(),
        preload: Vec::new(),
        config_name: "fast".to_string(),
        seed: 7,
        prune: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("flag `{}` needs a value", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => args.serve.addr = value(&mut i)?,
            "--threads" => {
                args.serve.n_threads = value(&mut i)?
                    .parse()
                    .map_err(|_| "--threads expects a number".to_string())?
            }
            "--max-batch" => {
                args.serve.batch.max_batch = value(&mut i)?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "--max-batch expects a positive number".to_string())?
            }
            "--max-wait-ms" => {
                let ms: u64 = value(&mut i)?
                    .parse()
                    .map_err(|_| "--max-wait-ms expects a number".to_string())?;
                args.serve.batch.max_wait = Duration::from_millis(ms);
            }
            "--queue-depth" => {
                args.serve.batch.queue_depth = value(&mut i)?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "--queue-depth expects a positive number".to_string())?
            }
            "--preload" => {
                args.preload
                    .extend(value(&mut i)?.split(',').map(|s| s.trim().to_string()));
            }
            "--config" => args.config_name = value(&mut i)?,
            "--prune" => {
                args.prune = Some(
                    value(&mut i)?
                        .parse::<usize>()
                        .ok()
                        .filter(|&k| k >= 1)
                        .ok_or_else(|| "--prune expects a positive number".to_string())?,
                );
            }
            "--max-instances" => {
                let n: usize = value(&mut i)?
                    .parse()
                    .map_err(|_| "--max-instances expects a number".to_string())?;
                args.serve.archive.max_train = n;
                args.serve.archive.max_test = n;
            }
            "--max-length" => {
                args.serve.archive.max_length = value(&mut i)?
                    .parse()
                    .map_err(|_| "--max-length expects a number".to_string())?
            }
            "--seed" => {
                args.seed = value(&mut i)?
                    .parse()
                    .map_err(|_| "--seed expects a number".to_string())?;
                args.serve.archive.seed = args.seed;
            }
            "--snapshot-dir" => {
                args.serve.snapshot_dir = Some(std::path::PathBuf::from(value(&mut i)?));
            }
            "--request-budget-ms" => {
                let ms: u64 = value(&mut i)?
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "--request-budget-ms expects a positive number".to_string())?;
                args.serve.request_budget = Duration::from_millis(ms);
            }
            "--trace-capacity" => {
                args.serve.trace_capacity = value(&mut i)?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "--trace-capacity expects a positive number".to_string())?
            }
            "--help" | "-h" => {
                println!(
                    "tsg-serve: batching classification server\n\n\
                     flags:\n  \
                     --addr HOST:PORT    bind address (default 127.0.0.1:7878; port 0 = ephemeral)\n  \
                     --threads N         extraction pool workers (0 = process default)\n  \
                     --max-batch N       max series per micro-batch (default 32)\n  \
                     --max-wait-ms N     max co-batching wait for the oldest request (default 2)\n  \
                     --queue-depth N     queued series before 429 backpressure (default 256)\n  \
                     --preload A,B,...   fit catalogue datasets before serving\n  \
                     --config NAME       preset for preloads: fast | paper | uvg-fast | wide (default fast)\n  \
                     --prune K           preloads: fit wide, keep the K most important features, refit\n  \
                     --max-instances N   dataset budget for catalogue fits\n  \
                     --max-length N      series length budget for catalogue fits\n  \
                     --seed N            fit seed (default 7)\n  \
                     --snapshot-dir DIR  crash-safe model snapshots + warm restart on boot\n  \
                     --request-budget-ms N  mid-request stall budget before 408 (default 30000)\n  \
                     --trace-capacity N  flight-recorder slots for /debug/traces (default 256)\n\n\
                     env:\n  \
                     TSG_LOG=error|warn|info|debug|trace|off  structured log level (default info)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
        i += 1;
    }
    Ok(args)
}

fn main() {
    tsg_trace::log::init_from_env();
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let server = match Server::bind(args.serve.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: failed to bind {}: {e}", args.serve.addr);
            std::process::exit(1);
        }
    };
    if args.serve.snapshot_dir.is_some() {
        let restored = server.registry().warm_restart();
        if restored > 0 {
            println!("warm restart: restored {restored} model(s) from snapshots");
        }
    }
    for name in &args.preload {
        // a warm-restarted model satisfies its preload — skip the refit
        // (the snapshot restores bit-identical predictions, proven by
        // tests/chaos.rs)
        if server.registry().get(name).is_ok() {
            println!("preload `{name}` already restored from snapshot");
            continue;
        }
        let source = TrainingSource::Catalogue {
            dataset: name.clone(),
            options: args.serve.archive,
        };
        let fit = match args.prune {
            None => server
                .registry()
                .fit(name, source, &args.config_name, args.seed),
            Some(k) => server
                .registry()
                .fit_pruned(name, source, &args.config_name, args.seed, k),
        };
        match fit {
            Ok(info) => println!(
                "fitted model `{name}` ({} config{}, {} train series, {} classes, {} features) in {:.2} s",
                info.config,
                if info.features.is_some() { ", pruned" } else { "" },
                info.n_train, info.n_classes, info.n_features, info.fit_seconds
            ),
            Err(e) => {
                eprintln!("error: preload of `{name}` failed: {e}");
                std::process::exit(1);
            }
        }
    }
    let addr = server.local_addr().expect("listener has an address");
    let batch = args.serve.batch;
    println!(
        "tsg-serve listening on http://{addr} (max batch {}, max wait {:?}, queue depth {})",
        batch.max_batch, batch.max_wait, batch.queue_depth
    );
    // line-buffered stdout under redirection: flush so the CI smoke test can
    // grep the address before the first request arrives
    use std::io::Write;
    let _ = std::io::stdout().flush();
    if let Err(e) = server.run() {
        eprintln!("error: server failed: {e}");
        std::process::exit(1);
    }
    println!("tsg-serve stopped cleanly");
}
