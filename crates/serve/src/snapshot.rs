//! Crash-safe on-disk snapshots of fitted models.
//!
//! One file per registered model under the server's `--snapshot-dir`,
//! written atomically (temp file + rename, through the injectable
//! [`tsg_faults::fsio`] seam) after every successful fit and reloaded by
//! [`crate::registry::ModelRegistry::warm_restart`] on boot. The format is
//! self-validating end to end:
//!
//! ```text
//! magic    "TSGSNAP1"                      8 bytes
//! version  u32 = 2                         little-endian
//! seed     u64                             fit seed (rebuilds the config)
//! info     ModelInfo fields                length-prefixed strings, f64 bits
//! features u8 flag [+ u32 count + strings] v2 only: pruned feature subset
//! payload  u32-length-prefixed blob        MvgClassifier::snapshot_bytes
//! hash     u64 FNV-1a                      over every byte above
//! ```
//!
//! Format v2 appended the optional `features` field (the importance-selected
//! subset a pruned model extracts). Readers still accept v1 files — they
//! simply carry no feature list — so snapshots written before the catalogue
//! landed keep restoring across the upgrade.
//!
//! Readers verify magic, version and the content hash before touching the
//! payload, and the payload itself re-verifies its config fingerprint and
//! tree structure inside `tsg_core`/`tsg_ml` — a torn, truncated or
//! bit-flipped snapshot is *detected* and reported, never served. Failure to
//! read always degrades to a refit; the server can lose a snapshot but can
//! never serve garbage from one.

use crate::registry::ModelInfo;
use std::io;
use std::path::{Path, PathBuf};
use tsg_faults::{fsio, Site};
use tsg_ml::snapshot::{put_blob, put_f64, put_str, put_u32, put_u64, put_u8, SnapReader};

/// Format magic; the trailing byte doubles as the major format generation.
const MAGIC: &[u8; 8] = b"TSGSNAP1";

/// Layout version under the magic; bump on any field change. v1 had no
/// `features` field; [`read_snapshot`] accepts both generations.
const FORMAT_VERSION: u32 = 2;

/// The previous layout (no `features` field), still readable.
const FORMAT_VERSION_V1: u32 = 1;

/// FNV-1a over `bytes` — the integrity trailer. A deliberately simple,
/// dependency-free hash: the threat model is torn writes and bit rot, not an
/// adversary crafting collisions in their own model files.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// The snapshot file for a model name: a sanitised prefix for debuggability
/// plus an FNV-1a hash of the full name for uniqueness (wire model names are
/// arbitrary strings; the filesystem never sees them verbatim).
pub(crate) fn snapshot_path(dir: &Path, name: &str) -> PathBuf {
    let safe: String = name
        .chars()
        .filter(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
        .take(40)
        .collect();
    dir.join(format!("{safe}-{:016x}.snap", fnv1a(name.as_bytes())))
}

/// Snapshot files under `dir`, sorted by path for a deterministic restore
/// order. Missing or unreadable directories read as empty.
pub(crate) fn list_snapshots(dir: &Path) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().map(|e| e == "snap").unwrap_or(false))
        .collect();
    paths.sort();
    paths
}

/// Atomically writes one model snapshot, returning its path. Every file
/// touch goes through the injectable seam (`Snap*` fault sites), so chaos
/// runs can tear, truncate or fail any step of the install.
pub(crate) fn write_snapshot(
    dir: &Path,
    info: &ModelInfo,
    seed: u64,
    payload: &[u8],
) -> io::Result<PathBuf> {
    fsio::create_dir_all(dir)?;
    let mut bytes = Vec::with_capacity(payload.len() + 256);
    bytes.extend_from_slice(MAGIC);
    put_u32(&mut bytes, FORMAT_VERSION);
    put_u64(&mut bytes, seed);
    put_str(&mut bytes, &info.name);
    put_u64(&mut bytes, info.version);
    match &info.dataset {
        Some(d) => {
            put_u8(&mut bytes, 1);
            put_str(&mut bytes, d);
        }
        None => put_u8(&mut bytes, 0),
    }
    put_str(&mut bytes, &info.config);
    put_u64(&mut bytes, info.n_train as u64);
    put_u64(&mut bytes, info.n_classes as u64);
    put_u64(&mut bytes, info.n_features as u64);
    put_f64(&mut bytes, info.fit_seconds);
    put_str(&mut bytes, &info.provenance);
    match &info.features {
        None => put_u8(&mut bytes, 0),
        Some(names) => {
            put_u8(&mut bytes, 1);
            put_u32(&mut bytes, names.len() as u32);
            for n in names {
                put_str(&mut bytes, n);
            }
        }
    }
    put_blob(&mut bytes, payload);
    let hash = fnv1a(&bytes);
    put_u64(&mut bytes, hash);

    let path = snapshot_path(dir, &info.name);
    static TMP_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let tmp = path.with_extension(format!(
        "tmp.{}.{}",
        std::process::id(),
        TMP_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    let result = (|| {
        let mut file = fsio::create(&tmp, Site::SnapOpen)?;
        fsio::write_all(&mut file, &bytes, Site::SnapWrite)?;
        fsio::sync_all(&file, Site::SnapSync)?;
        drop(file);
        fsio::rename(&tmp, &path, Site::SnapRename)
    })();
    if result.is_err() {
        // a failed install must not leave temp litter behind
        let _ = fsio::remove_file(&tmp);
    }
    result.map(|()| path)
}

fn corrupt(detail: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("snapshot: {detail}"))
}

/// Reads and fully validates one snapshot file: magic, format version and
/// content hash first, then the structured fields. Returns the stored
/// metadata, the fit seed and the opaque classifier payload (still to be
/// fingerprint-checked by `MvgClassifier::from_snapshot`).
pub(crate) fn read_snapshot(path: &Path) -> io::Result<(ModelInfo, u64, Vec<u8>)> {
    let bytes = fsio::read(path, Site::SnapOpen)?;
    let body_len = bytes
        .len()
        .checked_sub(MAGIC.len() + 8)
        .ok_or_else(|| corrupt("file shorter than header + trailer"))?;
    let (body, trailer) = bytes.split_at(body_len + MAGIC.len());
    let mut r = SnapReader::new(body);
    let mut magic = [0u8; 8];
    for slot in &mut magic {
        *slot = r.u8().ok_or_else(|| corrupt("truncated magic"))?;
    }
    if &magic != MAGIC {
        return Err(corrupt("bad magic (not a snapshot or wrong generation)"));
    }
    let mut stored_hash = [0u8; 8];
    stored_hash.copy_from_slice(trailer);
    if u64::from_le_bytes(stored_hash) != fnv1a(body) {
        return Err(corrupt("content hash mismatch (torn or corrupt file)"));
    }
    let version = r.u32().ok_or_else(|| corrupt("truncated version"))?;
    if version != FORMAT_VERSION && version != FORMAT_VERSION_V1 {
        return Err(corrupt("unsupported format version"));
    }
    let truncated = || corrupt("truncated field");
    let seed = r.u64().ok_or_else(truncated)?;
    let name = r.str().ok_or_else(truncated)?;
    let model_version = r.u64().ok_or_else(truncated)?;
    let dataset = match r.u8().ok_or_else(truncated)? {
        0 => None,
        1 => Some(r.str().ok_or_else(truncated)?),
        _ => return Err(corrupt("bad dataset flag")),
    };
    let config = r.str().ok_or_else(truncated)?;
    let n_train = r.u64().ok_or_else(truncated)? as usize;
    let n_classes = r.u64().ok_or_else(truncated)? as usize;
    let n_features = r.u64().ok_or_else(truncated)? as usize;
    let fit_seconds = r.f64().ok_or_else(truncated)?;
    let provenance = r.str().ok_or_else(truncated)?;
    let features = if version >= 2 {
        match r.u8().ok_or_else(truncated)? {
            0 => None,
            1 => {
                let count = r.u32().ok_or_else(truncated)? as usize;
                let mut names = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    names.push(r.str().ok_or_else(truncated)?);
                }
                Some(names)
            }
            _ => return Err(corrupt("bad features flag")),
        }
    } else {
        None // v1 predates pruning: full-catalogue model
    };
    let payload = r.blob().ok_or_else(truncated)?.to_vec();
    if !r.is_empty() {
        return Err(corrupt("trailing bytes"));
    }
    let info = ModelInfo {
        name,
        version: model_version,
        dataset,
        config,
        n_train,
        n_classes,
        n_features,
        fit_seconds,
        provenance,
        features,
    };
    Ok((info, seed, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_info() -> ModelInfo {
        ModelInfo {
            name: "demo/model name!".into(),
            version: 42,
            dataset: Some("BeetleFly".into()),
            config: "uvg-fast".into(),
            n_train: 16,
            n_classes: 2,
            n_features: 27,
            fit_seconds: 0.125,
            provenance: "cached".into(),
            features: None,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tsg-snap-test-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_preserves_every_field_and_payload() {
        let dir = temp_dir("roundtrip");
        let info = sample_info();
        let payload = vec![1u8, 2, 3, 250, 0, 7];
        let path = write_snapshot(&dir, &info, 9, &payload).unwrap();
        let (back, seed, body) = read_snapshot(&path).unwrap();
        assert_eq!(back.name, info.name);
        assert_eq!(back.version, 42);
        assert_eq!(back.dataset.as_deref(), Some("BeetleFly"));
        assert_eq!(back.config, "uvg-fast");
        assert_eq!(back.n_train, 16);
        assert_eq!(back.n_classes, 2);
        assert_eq!(back.n_features, 27);
        assert_eq!(back.fit_seconds.to_bits(), 0.125f64.to_bits());
        assert_eq!(back.provenance, "cached");
        assert_eq!(seed, 9);
        assert_eq!(body, payload);
        assert_eq!(list_snapshots(&dir), vec![path.clone()]);
        // an inline fit (no dataset) roundtrips too
        let mut inline = sample_info();
        inline.name = "other".into();
        inline.dataset = None;
        let p2 = write_snapshot(&dir, &inline, 1, &[]).unwrap();
        assert_eq!(read_snapshot(&p2).unwrap().0.dataset, None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pruned_feature_list_roundtrips_in_order() {
        let dir = temp_dir("features");
        let mut info = sample_info();
        info.name = "pruned".into();
        info.features = Some(vec![
            "T0 HVG P(M44)".into(),
            "stat acf_3".into(),
            "stat fft_mag_1".into(),
        ]);
        info.n_features = 3;
        let path = write_snapshot(&dir, &info, 5, &[7u8; 16]).unwrap();
        let (back, _, _) = read_snapshot(&path).unwrap();
        assert_eq!(back.features, info.features, "order and content preserved");
        std::fs::remove_dir_all(&dir).ok();
    }

    // A format-v1 file (written before the `features` field existed) must
    // still read back, with `features: None`. The bytes are hand-assembled
    // to the exact v1 layout — this is the compatibility contract.
    #[test]
    fn format_v1_snapshots_still_load_without_features() {
        let dir = temp_dir("v1-compat");
        let payload = vec![3u8, 1, 4, 1, 5];
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        put_u32(&mut bytes, FORMAT_VERSION_V1);
        put_u64(&mut bytes, 9); // seed
        put_str(&mut bytes, "legacy");
        put_u64(&mut bytes, 7); // model version
        put_u8(&mut bytes, 1);
        put_str(&mut bytes, "BeetleFly");
        put_str(&mut bytes, "uvg-fast");
        put_u64(&mut bytes, 16); // n_train
        put_u64(&mut bytes, 2); // n_classes
        put_u64(&mut bytes, 27); // n_features
        put_f64(&mut bytes, 0.5);
        put_str(&mut bytes, "cached");
        // v1 ends here: no features flag before the payload
        put_blob(&mut bytes, &payload);
        let hash = fnv1a(&bytes);
        put_u64(&mut bytes, hash);
        let path = dir.join("legacy.snap");
        std::fs::write(&path, &bytes).unwrap();
        let (info, seed, body) = read_snapshot(&path).unwrap();
        assert_eq!(info.name, "legacy");
        assert_eq!(info.version, 7);
        assert_eq!(info.features, None, "v1 carries no feature list");
        assert_eq!(seed, 9);
        assert_eq!(body, payload);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_truncation_and_any_bitflip_is_detected() {
        let dir = temp_dir("corrupt");
        let info = sample_info();
        let path = write_snapshot(&dir, &info, 9, &[9u8; 64]).unwrap();
        let valid = std::fs::read(&path).unwrap();
        for cut in 0..valid.len() {
            std::fs::write(&path, &valid[..cut]).unwrap();
            assert!(read_snapshot(&path).is_err(), "cut at {cut} accepted");
        }
        // flip one bit at a spread of positions — the hash must catch all
        for pos in (0..valid.len()).step_by(7) {
            let mut bad = valid.clone();
            bad[pos] ^= 0x20;
            std::fs::write(&path, &bad).unwrap();
            assert!(read_snapshot(&path).is_err(), "flip at {pos} accepted");
        }
        std::fs::write(&path, &valid).unwrap();
        assert!(read_snapshot(&path).is_ok(), "pristine file must read back");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hostile_names_map_to_safe_distinct_paths() {
        let dir = PathBuf::from("/snapdir");
        let a = snapshot_path(&dir, "../../etc/passwd");
        let b = snapshot_path(&dir, "..\\..\\etc\\passwd");
        let c = snapshot_path(&dir, "model v1 (prod)");
        for p in [&a, &b, &c] {
            assert_eq!(p.parent(), Some(dir.as_path()), "{p:?} escaped the dir");
        }
        assert_ne!(a, b, "distinct names must not collide");
        // same name → same path (refits overwrite in place)
        assert_eq!(snapshot_path(&dir, "m"), snapshot_path(&dir, "m"));
    }

    #[test]
    fn missing_directory_lists_empty_and_read_errors_cleanly() {
        let ghost = PathBuf::from("/nonexistent-tsg-snapshot-dir");
        assert!(list_snapshots(&ghost).is_empty());
        assert!(read_snapshot(&ghost.join("x.snap")).is_err());
    }
}
