//! The HTTP server: accept loop, routing and graceful shutdown.
//!
//! ## Routes
//!
//! | method | path | purpose |
//! |--------|------|---------|
//! | `GET` | `/healthz` | liveness + model count |
//! | `GET` | `/metrics` | Prometheus text metrics |
//! | `GET` | `/models` | registered model metadata |
//! | `POST` | `/models/{name}/fit` | fit/replace a model (catalogue or inline series) |
//! | `POST` | `/models/{name}/classify` | classify series (micro-batched) |
//! | `DELETE` | `/models/{name}` | unregister a model |
//! | `POST` | `/shutdown` | graceful shutdown |
//!
//! Connections are HTTP/1.1 keep-alive, one handler thread per connection
//! with short read timeouts so idle handlers observe the shutdown flag.
//! Shutdown (via `POST /shutdown` or [`ShutdownHandle::shutdown`]) stops the
//! accept loop, joins every connection handler, then tears down the registry
//! (joining each model's batcher thread) — in-flight requests finish first.

use crate::batcher::{BatchConfig, ClassifyError};
use crate::http::{self, Request, RequestOutcome, Response};
use crate::json::Json;
use crate::metrics::ServerMetrics;
use crate::registry::{ModelRegistry, RegistryError, TrainingSource};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tsg_datasets::archive::ArchiveOptions;
use tsg_ts::{Dataset, TimeSeries};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Worker threads of the shared extraction pool (`0` = process default).
    pub n_threads: usize,
    /// Micro-batch scheduler tuning.
    pub batch: BatchConfig,
    /// Default dataset budget for catalogue fits that do not override it.
    pub archive: ArchiveOptions,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            n_threads: 0,
            batch: BatchConfig::default(),
            archive: ArchiveOptions::bounded(60, 512, 7),
        }
    }
}

/// Shared server state.
struct ServerState {
    registry: ModelRegistry,
    metrics: Arc<ServerMetrics>,
    shutdown: AtomicBool,
    started: Instant,
    archive: ArchiveOptions,
}

/// A bound (but not yet running) server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

/// Cloneable handle that can stop a running server from another thread.
#[derive(Clone)]
pub struct ShutdownHandle {
    state: Arc<ServerState>,
}

impl ShutdownHandle {
    /// Requests a graceful shutdown (idempotent).
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::Release);
    }
}

/// Read timeout on connection sockets; bounds how long an idle handler takes
/// to notice the shutdown flag.
const READ_TIMEOUT: Duration = Duration::from_millis(200);

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

impl Server {
    /// Binds the listener and builds an empty registry.
    pub fn bind(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let metrics = Arc::new(ServerMetrics::default());
        let state = Arc::new(ServerState {
            registry: ModelRegistry::new(config.n_threads, config.batch, Arc::clone(&metrics)),
            metrics,
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            archive: config.archive,
        });
        Ok(Server { listener, state })
    }

    /// The bound address (useful with port `0`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The registry, for pre-loading models before `run`.
    pub fn registry(&self) -> &ModelRegistry {
        &self.state.registry
    }

    /// A handle that can stop the server from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Runs the accept loop until shutdown, then drains connections and
    /// tears the registry down.
    pub fn run(self) -> std::io::Result<()> {
        let handles: Mutex<Vec<std::thread::JoinHandle<()>>> = Mutex::new(Vec::new());
        while !self.state.shutdown.load(Ordering::Acquire) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let state = Arc::clone(&self.state);
                    match std::thread::Builder::new()
                        .name("tsg-serve-conn".into())
                        .spawn(move || handle_connection(stream, &state))
                    {
                        Ok(handle) => {
                            let mut guard =
                                handles.lock().unwrap_or_else(|poison| poison.into_inner());
                            guard.push(handle);
                            // reap finished handlers so the vec stays bounded
                            // under long-lived load
                            guard.retain(|h| !h.is_finished());
                        }
                        Err(e) => {
                            // thread exhaustion must not kill the server:
                            // drop this connection (the stream closes on
                            // drop) and keep accepting
                            eprintln!("tsg-serve: spawn failed (connection dropped): {e}");
                            std::thread::sleep(ACCEPT_POLL);
                        }
                    }
                }
                Err(e) if http::is_timeout(&e) => std::thread::sleep(ACCEPT_POLL),
                Err(e) => {
                    // transient accept failures (EMFILE under connection
                    // bursts, ECONNABORTED races) must not kill the server;
                    // back off and keep serving the connections we have
                    eprintln!("tsg-serve: accept failed (retrying): {e}");
                    std::thread::sleep(ACCEPT_POLL);
                }
            }
        }
        for handle in handles
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
        {
            let _ = handle.join();
        }
        self.state.registry.shutdown();
        Ok(())
    }
}

fn handle_connection(stream: TcpStream, state: &Arc<ServerState>) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let mut write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match http::read_request(&mut reader) {
            Ok(RequestOutcome::Closed) => return,
            Ok(RequestOutcome::Idle) => {
                if state.shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
            Ok(RequestOutcome::Request(request)) => {
                let started = Instant::now();
                state.metrics.requests_total.inc();
                let keep_alive = request.keep_alive() && !state.shutdown.load(Ordering::Acquire);
                let response = route(&request, state);
                state.metrics.record_status(response.status);
                state
                    .metrics
                    .request_latency_seconds
                    .observe(started.elapsed().as_secs_f64());
                if response.write_to(&mut write_half, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Err(e) if http::is_timeout(&e) => {
                // timed out mid-request: the stream is no longer aligned to
                // message boundaries, give up on the connection
                let _ = Response::error(408, "timed out reading request")
                    .write_to(&mut write_half, false);
                return;
            }
            Err(_) => {
                let _ = Response::error(400, "malformed request").write_to(&mut write_half, false);
                return;
            }
        }
    }
}

fn route(request: &Request, state: &Arc<ServerState>) -> Response {
    // bodies are framed by Content-Length only; a chunked body would desync
    // the keep-alive stream, so refuse it outright
    if matches!(request.header("transfer-encoding"), Some(v) if !v.eq_ignore_ascii_case("identity"))
    {
        return Response::error(
            501,
            "Transfer-Encoding is not supported; send Content-Length",
        );
    }
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => healthz(state),
        ("GET", ["metrics"]) => Response::text(
            200,
            state
                .metrics
                .render(state.registry.len(), state.started.elapsed().as_secs_f64()),
        ),
        ("GET", ["models"]) => list_models(state),
        ("POST", ["models", name, "fit"]) => fit_model(request, state, name),
        ("POST", ["models", name, "classify"]) => classify(request, state, name),
        ("DELETE", ["models", name]) => {
            if state.registry.remove(name) {
                Response::json(
                    200,
                    &Json::obj(vec![("removed", Json::Str(name.to_string()))]),
                )
            } else {
                Response::error(404, &format!("unknown model `{name}`"))
            }
        }
        ("POST", ["shutdown"]) => {
            state.shutdown.store(true, Ordering::Release);
            Response::json(
                200,
                &Json::obj(vec![("status", Json::Str("shutting down".into()))]),
            )
        }
        ("GET", _) | ("POST", _) | ("DELETE", _) => Response::error(404, "no such route"),
        _ => Response::error(405, "method not allowed"),
    }
}

fn healthz(state: &Arc<ServerState>) -> Response {
    Response::json(
        200,
        &Json::obj(vec![
            ("status", Json::Str("ok".into())),
            ("models", Json::Num(state.registry.len() as f64)),
            (
                "uptime_seconds",
                Json::Num(state.started.elapsed().as_secs_f64()),
            ),
        ]),
    )
}

fn model_info_json(info: &crate::registry::ModelInfo) -> Json {
    Json::obj(vec![
        ("name", Json::Str(info.name.clone())),
        (
            "dataset",
            info.dataset
                .as_ref()
                .map(|d| Json::Str(d.clone()))
                .unwrap_or(Json::Null),
        ),
        ("config", Json::Str(info.config.clone())),
        ("n_train", Json::Num(info.n_train as f64)),
        ("n_classes", Json::Num(info.n_classes as f64)),
        ("n_features", Json::Num(info.n_features as f64)),
        ("fit_seconds", Json::Num(info.fit_seconds)),
        ("provenance", Json::Str(info.provenance.clone())),
    ])
}

fn list_models(state: &Arc<ServerState>) -> Response {
    let models = state.registry.list().iter().map(model_info_json).collect();
    Response::json(200, &Json::obj(vec![("models", Json::Arr(models))]))
}

/// Parses `{"values": [...], "label": n}` or a bare `[...]` array.
fn parse_series(value: &Json, require_label: bool) -> Result<TimeSeries, String> {
    let (values_json, label) = match value {
        Json::Arr(_) => (value, None),
        Json::Obj(_) => {
            let values = value
                .get("values")
                .ok_or_else(|| "series object needs a `values` array".to_string())?;
            let label = match value.get("label") {
                Some(l) => Some(
                    l.as_usize()
                        .ok_or_else(|| "`label` must be a non-negative integer".to_string())?,
                ),
                None => None,
            };
            (values, label)
        }
        _ => return Err("series must be an array of numbers or an object".to_string()),
    };
    let items = values_json
        .as_array()
        .ok_or_else(|| "series values must be an array".to_string())?;
    let mut values = Vec::with_capacity(items.len());
    for item in items {
        let v = item
            .as_f64()
            .ok_or_else(|| "series values must be numbers".to_string())?;
        if !v.is_finite() {
            return Err("series values must be finite".to_string());
        }
        values.push(v);
    }
    if values.is_empty() {
        return Err("series must not be empty".to_string());
    }
    match (label, require_label) {
        (Some(label), _) => Ok(TimeSeries::with_label(values, label)),
        (None, false) => Ok(TimeSeries::new(values)),
        (None, true) => Err("training series need a `label`".to_string()),
    }
}

fn fit_model(request: &Request, state: &Arc<ServerState>, name: &str) -> Response {
    let body = match request.json_body() {
        Ok(b) => b,
        Err(e) => return Response::error(400, &e),
    };
    let config_name = body
        .get("config")
        .and_then(|c| c.as_str())
        .unwrap_or("fast")
        .to_string();
    // invalid numeric fields are rejected, never silently replaced by
    // defaults — a model fitted under the wrong seed/budget looks healthy
    let seed = match body.get("seed") {
        None => state.archive.seed,
        Some(s) => match s.as_u64() {
            Some(seed) => seed,
            None => return Response::error(400, "`seed` must be a whole number below 2^53"),
        },
    };
    let numeric_field = |key: &str| -> Result<Option<usize>, Response> {
        match body.get(key) {
            None => Ok(None),
            Some(v) => v.as_usize().map(Some).ok_or_else(|| {
                Response::error(400, &format!("`{key}` must be a non-negative integer"))
            }),
        }
    };
    let source = if let Some(dataset) = body.get("dataset").and_then(|d| d.as_str()) {
        let mut options = state.archive;
        options.seed = seed;
        match numeric_field("max_instances") {
            Ok(Some(n)) => {
                options.max_train = n;
                options.max_test = n;
            }
            Ok(None) => {}
            Err(response) => return response,
        }
        match numeric_field("max_length") {
            Ok(Some(n)) => options.max_length = n,
            Ok(None) => {}
            Err(response) => return response,
        }
        TrainingSource::Catalogue {
            dataset: dataset.to_string(),
            options,
        }
    } else if let Some(train) = body.get("train") {
        let items = match train.get("series").and_then(|s| s.as_array()) {
            Some(items) => items,
            None => return Response::error(400, "`train` needs a `series` array"),
        };
        let mut dataset = Dataset::new(format!("{name}_inline"));
        for item in items {
            match parse_series(item, true) {
                Ok(series) => dataset.push(series),
                Err(e) => return Response::error(400, &e),
            }
        }
        TrainingSource::Inline(dataset)
    } else {
        return Response::error(400, "fit request needs `dataset` or `train`");
    };
    match state.registry.fit(name, source, &config_name, seed) {
        Ok(info) => Response::json(200, &model_info_json(&info)),
        Err(e @ (RegistryError::UnknownConfig(_) | RegistryError::UnknownDataset(_))) => {
            Response::error(400, &e.to_string())
        }
        Err(e @ RegistryError::UnknownModel(_)) => Response::error(404, &e.to_string()),
        Err(e @ RegistryError::Fit(_)) => Response::error(500, &e.to_string()),
    }
}

fn classify(request: &Request, state: &Arc<ServerState>, name: &str) -> Response {
    let entry = match state.registry.get(name) {
        Ok(entry) => entry,
        Err(e) => return Response::error(404, &e.to_string()),
    };
    let body = match request.json_body() {
        Ok(b) => b,
        Err(e) => return Response::error(400, &e),
    };
    let items = match body.get("series").and_then(|s| s.as_array()) {
        Some(items) => items,
        None => return Response::error(400, "classify request needs a `series` array"),
    };
    let want_proba = body.get("proba").and_then(|p| p.as_bool()).unwrap_or(false);
    let mut series = Vec::with_capacity(items.len());
    for item in items {
        match parse_series(item, false) {
            Ok(s) => series.push(s),
            Err(e) => return Response::error(400, &e),
        }
    }
    state.metrics.classify_requests_total.inc();
    let started = Instant::now();
    let outcome = entry.classify(series, want_proba);
    state
        .metrics
        .classify_latency_seconds
        .observe(started.elapsed().as_secs_f64());
    match outcome {
        Ok(output) => {
            let mut members = vec![
                ("model", Json::Str(name.to_string())),
                (
                    "predictions",
                    Json::Arr(
                        output
                            .predictions
                            .iter()
                            .map(|&p| Json::Num(p as f64))
                            .collect(),
                    ),
                ),
                ("batch_size", Json::Num(output.batch_size as f64)),
            ];
            if let Some(probabilities) = output.probabilities {
                members.push((
                    "probabilities",
                    Json::Arr(probabilities.into_iter().map(Json::nums).collect()),
                ));
            }
            Response::json(200, &Json::obj(members))
        }
        Err(ClassifyError::Saturated) => Response::error(429, "classify queue is full"),
        Err(ClassifyError::ShuttingDown) => Response::error(503, "server is shutting down"),
        Err(ClassifyError::Model(e)) => Response::error(500, &e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_series_accepts_both_shapes() {
        let bare = Json::parse("[1, 2.5, -3]").unwrap();
        let s = parse_series(&bare, false).unwrap();
        assert_eq!(s.values(), &[1.0, 2.5, -3.0]);
        assert_eq!(s.label(), None);

        let labeled = Json::parse(r#"{"values": [1, 2], "label": 4}"#).unwrap();
        let s = parse_series(&labeled, true).unwrap();
        assert_eq!(s.label(), Some(4));
    }

    #[test]
    fn parse_series_rejects_bad_input() {
        for (text, require_label) in [
            ("[]", false),
            ("[1, \"x\"]", false),
            ("[1, null]", false),
            ("3", false),
            (r#"{"values": [1]}"#, true),
            (r#"{"label": 1}"#, false),
            (r#"{"values": [1], "label": -2}"#, true),
        ] {
            let value = Json::parse(text).unwrap();
            assert!(
                parse_series(&value, require_label).is_err(),
                "accepted {text}"
            );
        }
    }
}
