//! The HTTP server: bind/preload API, routing and graceful shutdown around
//! the event loop in [`crate::event_loop`].
//!
//! ## Routes
//!
//! | method | path | purpose |
//! |--------|------|---------|
//! | `GET` | `/healthz` | liveness + model count |
//! | `GET` | `/metrics` | Prometheus text metrics |
//! | `GET` | `/models` | registered model metadata (including versions) |
//! | `POST` | `/models/{name}/fit` | fit/replace a model (catalogue or inline series) |
//! | `POST` | `/models/{name}/classify` | classify series (micro-batched; optional `version` pin) |
//! | `DELETE` | `/models/{name}` | unregister a model |
//! | `POST` | `/shutdown` | graceful shutdown |
//!
//! Connections are nonblocking keep-alive sockets multiplexed by one
//! readiness-driven thread (epoll); HTTP/1.1 pipelining is supported. Cheap
//! routes answer inline on the loop; classify requests complete through the
//! shared micro-batcher's callback and fits run on a dedicated ops worker
//! thread, so neither ever stalls other connections. `POST /shutdown` (or
//! [`ShutdownHandle::shutdown`]) stops accepting, drains in-flight work
//! under a grace deadline, then tears the registry down.
//!
//! Classify requests may pin a model version (`"version": N` in the body):
//! when a refit hot-swapped the model since the client last looked, the
//! server answers `409 Conflict` instead of silently classifying with a
//! different model.

use crate::batcher::{BatchConfig, ClassifyError, ClassifyOutput};
use crate::event_loop::{self, AsyncCtx, Completed, OpsJob};
use crate::http::{Request, Response};
use crate::json::Json;
use crate::metrics::ServerMetrics;
use crate::registry::{ModelRegistry, RegistryError, TrainingSource};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};
use tsg_datasets::archive::ArchiveOptions;
use tsg_trace::{FinishedTrace, FlightRecorder, Stage};
use tsg_ts::{Dataset, TimeSeries};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Worker threads of the shared extraction pool (`0` = process default).
    pub n_threads: usize,
    /// Micro-batch scheduler tuning.
    pub batch: BatchConfig,
    /// Default dataset budget for catalogue fits that do not override it.
    pub archive: ArchiveOptions,
    /// Directory for model snapshots: every successful fit is snapshotted
    /// there and `warm_restart` reloads them on boot. `None` disables
    /// persistence.
    pub snapshot_dir: Option<PathBuf>,
    /// Wall-clock budget for receiving one request; a peer that started a
    /// request but stalled past this gets a 408 from the timeout sweep.
    pub request_budget: Duration,
    /// How many finished request traces the flight recorder retains
    /// (oldest evicted first); served by `GET /debug/traces`.
    pub trace_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            n_threads: 0,
            batch: BatchConfig::default(),
            archive: ArchiveOptions::bounded(60, 512, 7),
            snapshot_dir: None,
            request_budget: crate::http::MID_REQUEST_BUDGET,
            trace_capacity: 256,
        }
    }
}

/// Shared server state.
pub(crate) struct ServerState {
    pub(crate) registry: ModelRegistry,
    pub(crate) metrics: Arc<ServerMetrics>,
    pub(crate) shutdown: AtomicBool,
    pub(crate) started: Instant,
    pub(crate) archive: ArchiveOptions,
    pub(crate) request_budget: Duration,
    pub(crate) traces: FlightRecorder,
}

/// A bound (but not yet running) server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

/// Cloneable handle that can stop a running server from another thread.
#[derive(Clone)]
pub struct ShutdownHandle {
    state: Arc<ServerState>,
}

impl ShutdownHandle {
    /// Requests a graceful shutdown (idempotent). The event loop observes
    /// the flag within its tick interval.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::Release);
    }
}

impl Server {
    /// Binds the listener and builds an empty registry.
    pub fn bind(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let metrics = Arc::new(ServerMetrics::default());
        let mut registry =
            ModelRegistry::new(config.n_threads, config.batch, Arc::clone(&metrics))?;
        if let Some(dir) = &config.snapshot_dir {
            registry.set_snapshot_dir(dir.clone());
        }
        let state = Arc::new(ServerState {
            registry,
            metrics,
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            archive: config.archive,
            request_budget: config.request_budget,
            traces: FlightRecorder::new(config.trace_capacity),
        });
        Ok(Server { listener, state })
    }

    /// The bound address (useful with port `0`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The registry, for pre-loading models before `run`.
    pub fn registry(&self) -> &ModelRegistry {
        &self.state.registry
    }

    /// A handle that can stop the server from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Runs the event loop until shutdown, then joins the ops worker and
    /// tears the registry down.
    pub fn run(self) -> std::io::Result<()> {
        // blocking fits run here so they never stall the event loop; jobs
        // are panic-isolated at construction (see `fit_model`)
        let (ops_tx, ops_rx) = mpsc::channel::<OpsJob>();
        let worker = std::thread::Builder::new()
            .name("tsg-serve-ops".into())
            .spawn(move || {
                while let Ok(job) = ops_rx.recv() {
                    job();
                }
            })?;
        let result = event_loop::run(self.listener, &self.state, &ops_tx);
        drop(ops_tx);
        let _ = worker.join();
        self.state.registry.shutdown();
        result
    }
}

/// How a routed request will produce its response.
pub(crate) enum Routed {
    /// The response is ready now; the event loop serializes and sends it.
    Immediate(Response),
    /// The request was handed to a worker (batcher or ops thread); the
    /// response arrives through the completion queue.
    Async,
}

/// Routes one parsed request. Cheap routes answer immediately; classify and
/// fit go asynchronous via `ctx`. `POST /shutdown` flips the shutdown flag
/// *during* routing — the caller computes keep-alive afterwards, so the
/// shutdown response itself honestly advertises `Connection: close`.
pub(crate) fn route_request(
    state: &Arc<ServerState>,
    request: &Request,
    ctx: AsyncCtx,
    ops: &mpsc::Sender<OpsJob>,
) -> Routed {
    // bodies are framed by Content-Length only; a chunked body would desync
    // the keep-alive stream, so refuse it outright (the event loop closes
    // the connection after a 501 for exactly that reason)
    if matches!(request.header("transfer-encoding"), Some(v) if !v.eq_ignore_ascii_case("identity"))
    {
        return Routed::Immediate(Response::error(
            501,
            "Transfer-Encoding is not supported; send Content-Length",
        ));
    }
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Routed::Immediate(healthz(state)),
        ("GET", ["metrics"]) => Routed::Immediate(Response::text(
            200,
            state.metrics.render(
                state.registry.len(),
                state.started.elapsed().as_secs_f64(),
                tsg_faults::injected_total(),
            ),
        )),
        ("GET", ["models"]) => Routed::Immediate(list_models(state)),
        ("GET", ["debug", "traces"]) => Routed::Immediate(debug_traces(state, request)),
        ("POST", ["models", name, "fit"]) => fit_model(request, state, name, ctx, ops),
        ("POST", ["models", name, "classify"]) => classify(request, state, name, ctx),
        ("DELETE", ["models", name]) => Routed::Immediate(if state.registry.remove(name) {
            Response::json(
                200,
                &Json::obj(vec![("removed", Json::Str(name.to_string()))]),
            )
        } else {
            Response::error(404, &format!("unknown model `{name}`"))
        }),
        ("POST", ["shutdown"]) => {
            state.shutdown.store(true, Ordering::Release);
            Routed::Immediate(Response::json(
                200,
                &Json::obj(vec![("status", Json::Str("shutting down".into()))]),
            ))
        }
        ("GET", _) | ("POST", _) | ("DELETE", _) => {
            Routed::Immediate(Response::error(404, "no such route"))
        }
        _ => Routed::Immediate(Response::error(405, "method not allowed")),
    }
}

fn healthz(state: &Arc<ServerState>) -> Response {
    Response::json(
        200,
        &Json::obj(vec![
            ("status", Json::Str("ok".into())),
            ("models", Json::Num(state.registry.len() as f64)),
            (
                "uptime_seconds",
                Json::Num(state.started.elapsed().as_secs_f64()),
            ),
        ]),
    )
}

fn model_info_json(info: &crate::registry::ModelInfo) -> Json {
    Json::obj(vec![
        ("name", Json::Str(info.name.clone())),
        ("version", Json::Num(info.version as f64)),
        (
            "dataset",
            info.dataset
                .as_ref()
                .map(|d| Json::Str(d.clone()))
                .unwrap_or(Json::Null),
        ),
        ("config", Json::Str(info.config.clone())),
        ("n_train", Json::Num(info.n_train as f64)),
        ("n_classes", Json::Num(info.n_classes as f64)),
        ("n_features", Json::Num(info.n_features as f64)),
        ("fit_seconds", Json::Num(info.fit_seconds)),
        ("provenance", Json::Str(info.provenance.clone())),
        (
            "features",
            info.features
                .as_ref()
                .map(|names| Json::Arr(names.iter().map(|n| Json::Str(n.clone())).collect()))
                .unwrap_or(Json::Null),
        ),
    ])
}

fn list_models(state: &Arc<ServerState>) -> Response {
    let models = state.registry.list().iter().map(model_info_json).collect();
    Response::json(200, &Json::obj(vec![("models", Json::Arr(models))]))
}

/// One finished trace as JSON. Every stage key is always present (zeros
/// included) so scrapers never need existence checks.
fn trace_json(trace: &FinishedTrace) -> Json {
    let stages = Stage::ALL
        .iter()
        .map(|&stage| (stage.as_str(), Json::Num(trace.stage(stage) as f64)))
        .collect();
    Json::obj(vec![
        ("trace_id", Json::Str(format!("{:016x}", trace.id))),
        ("path", Json::Str(trace.path.clone())),
        (
            "model",
            trace
                .model
                .as_ref()
                .map(|m| Json::Str(m.clone()))
                .unwrap_or(Json::Null),
        ),
        ("status", Json::Num(f64::from(trace.status))),
        ("total_micros", Json::Num(trace.total_micros as f64)),
        ("stages_micros", Json::obj(stages)),
        ("faults_injected", Json::Num(trace.faults_injected as f64)),
        ("seq", Json::Num(trace.seq as f64)),
    ])
}

/// `GET /debug/traces` — the flight recorder, oldest first. `?slow_ms=N`
/// keeps only traces at least that slow; `?trace_id=HEX` looks one up.
fn debug_traces(state: &Arc<ServerState>, request: &Request) -> Response {
    let slow_micros = match request.query_param("slow_ms") {
        None => None,
        Some(raw) => match raw.parse::<f64>() {
            Ok(ms) if ms >= 0.0 && ms.is_finite() => Some((ms * 1000.0) as u64),
            _ => return Response::error(400, "`slow_ms` must be a non-negative number"),
        },
    };
    let wanted_id = match request.query_param("trace_id") {
        None => None,
        Some(raw) => match u64::from_str_radix(raw, 16) {
            Ok(id) => Some(id),
            Err(_) => return Response::error(400, "`trace_id` must be a hex trace id"),
        },
    };
    let mut traces = state.traces.snapshot();
    if let Some(min_micros) = slow_micros {
        traces.retain(|t| t.total_micros >= min_micros);
    }
    if let Some(id) = wanted_id {
        traces.retain(|t| t.id == id);
    }
    Response::json(
        200,
        &Json::obj(vec![
            ("capacity", Json::Num(state.traces.capacity() as f64)),
            (
                "recorded_total",
                Json::Num(state.traces.recorded_total() as f64),
            ),
            ("count", Json::Num(traces.len() as f64)),
            ("traces", Json::Arr(traces.iter().map(trace_json).collect())),
        ]),
    )
}

/// Parses `{"values": [...], "label": n}` or a bare `[...]` array.
fn parse_series(value: &Json, require_label: bool) -> Result<TimeSeries, String> {
    let (values_json, label) = match value {
        Json::Arr(_) => (value, None),
        Json::Obj(_) => {
            let values = value
                .get("values")
                .ok_or_else(|| "series object needs a `values` array".to_string())?;
            let label = match value.get("label") {
                Some(l) => Some(
                    l.as_usize()
                        .ok_or_else(|| "`label` must be a non-negative integer".to_string())?,
                ),
                None => None,
            };
            (values, label)
        }
        _ => return Err("series must be an array of numbers or an object".to_string()),
    };
    let items = values_json
        .as_array()
        .ok_or_else(|| "series values must be an array".to_string())?;
    let mut values = Vec::with_capacity(items.len());
    for item in items {
        let v = item
            .as_f64()
            .ok_or_else(|| "series values must be numbers".to_string())?;
        if !v.is_finite() {
            return Err("series values must be finite".to_string());
        }
        values.push(v);
    }
    if values.is_empty() {
        return Err("series must not be empty".to_string());
    }
    match (label, require_label) {
        (Some(label), _) => Ok(TimeSeries::with_label(values, label)),
        (None, false) => Ok(TimeSeries::new(values)),
        (None, true) => Err("training series need a `label`".to_string()),
    }
}

/// `POST /models/{name}/fit` — parsing and validation happen inline (cheap);
/// the fit itself is queued to the ops worker so a multi-second training run
/// never blocks the event loop.
fn fit_model(
    request: &Request,
    state: &Arc<ServerState>,
    name: &str,
    ctx: AsyncCtx,
    ops: &mpsc::Sender<OpsJob>,
) -> Routed {
    let body = match request.json_body() {
        Ok(b) => b,
        Err(e) => return Routed::Immediate(Response::error(400, &e)),
    };
    let config_name = body
        .get("config")
        .and_then(|c| c.as_str())
        .unwrap_or("fast")
        .to_string();
    // invalid numeric fields are rejected, never silently replaced by
    // defaults — a model fitted under the wrong seed/budget looks healthy
    let seed = match body.get("seed") {
        None => state.archive.seed,
        Some(s) => match s.as_u64() {
            Some(seed) => seed,
            None => {
                return Routed::Immediate(Response::error(
                    400,
                    "`seed` must be a whole number below 2^53",
                ))
            }
        },
    };
    let numeric_field = |key: &str| -> Result<Option<usize>, Response> {
        match body.get(key) {
            None => Ok(None),
            Some(v) => v.as_usize().map(Some).ok_or_else(|| {
                Response::error(400, &format!("`{key}` must be a non-negative integer"))
            }),
        }
    };
    // optional importance-driven pruning: fit the preset wide, keep only
    // the top-k features, refit and serve the pruned model
    let prune = match numeric_field("prune") {
        Ok(None) => None,
        Ok(Some(0)) => {
            return Routed::Immediate(Response::error(400, "`prune` must be at least 1"))
        }
        Ok(Some(k)) => Some(k),
        Err(response) => return Routed::Immediate(response),
    };
    let source = if let Some(dataset) = body.get("dataset").and_then(|d| d.as_str()) {
        let mut options = state.archive;
        options.seed = seed;
        match numeric_field("max_instances") {
            Ok(Some(n)) => {
                options.max_train = n;
                options.max_test = n;
            }
            Ok(None) => {}
            Err(response) => return Routed::Immediate(response),
        }
        match numeric_field("max_length") {
            Ok(Some(n)) => options.max_length = n,
            Ok(None) => {}
            Err(response) => return Routed::Immediate(response),
        }
        TrainingSource::Catalogue {
            dataset: dataset.to_string(),
            options,
        }
    } else if let Some(train) = body.get("train") {
        let items = match train.get("series").and_then(|s| s.as_array()) {
            Some(items) => items,
            None => {
                return Routed::Immediate(Response::error(400, "`train` needs a `series` array"))
            }
        };
        let mut dataset = Dataset::new(format!("{name}_inline"));
        for item in items {
            match parse_series(item, true) {
                Ok(series) => dataset.push(series),
                Err(e) => return Routed::Immediate(Response::error(400, &e)),
            }
        }
        TrainingSource::Inline(dataset)
    } else {
        return Routed::Immediate(Response::error(
            400,
            "fit request needs `dataset` or `train`",
        ));
    };

    let state = Arc::clone(state);
    let name = name.to_string();
    let job: OpsJob = Box::new(move || {
        // panic-isolated: a panicking fit must neither kill the ops worker
        // nor leave the connection waiting on a response that never comes
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match prune {
            None => state.registry.fit(&name, source, &config_name, seed),
            Some(k) => state
                .registry
                .fit_pruned(&name, source, &config_name, seed, k),
        }));
        let response = match outcome {
            Ok(Ok(info)) => Response::json(200, &model_info_json(&info)),
            Ok(Err(e @ (RegistryError::UnknownConfig(_) | RegistryError::UnknownDataset(_)))) => {
                Response::error(400, &e.to_string())
            }
            Ok(Err(e @ RegistryError::UnknownModel(_))) => Response::error(404, &e.to_string()),
            Ok(Err(e @ RegistryError::Fit(_))) => Response::error(500, &e.to_string()),
            Err(_) => Response::error(500, "fit crashed; model unchanged"),
        };
        state.metrics.record_status(response.status);
        state
            .metrics
            .request_latency_seconds
            .observe(ctx.started.elapsed().as_secs_f64());
        ctx.trace.set_model(&name);
        ctx.trace.set_status(response.status);
        let bytes = {
            let _span = ctx.trace.span(Stage::Serialize);
            response.serialize(ctx.keep_alive)
        };
        ctx.completions.push(Completed {
            token: ctx.token,
            generation: ctx.generation,
            seq: ctx.seq,
            bytes,
            trace: Some(ctx.trace),
        });
    });
    match ops.send(job) {
        Ok(()) => Routed::Async,
        Err(_) => Routed::Immediate(Response::error(500, "fit worker unavailable")),
    }
}

/// Builds the wire response for a finished classify request.
fn classify_response(
    model: &str,
    version: u64,
    outcome: Result<ClassifyOutput, ClassifyError>,
) -> Response {
    match outcome {
        Ok(output) => {
            let mut members = vec![
                ("model", Json::Str(model.to_string())),
                ("version", Json::Num(version as f64)),
                (
                    "predictions",
                    Json::Arr(
                        output
                            .predictions
                            .iter()
                            .map(|&p| Json::Num(p as f64))
                            .collect(),
                    ),
                ),
                ("batch_size", Json::Num(output.batch_size as f64)),
            ];
            if let Some(probabilities) = output.probabilities {
                members.push((
                    "probabilities",
                    Json::Arr(probabilities.into_iter().map(Json::nums).collect()),
                ));
            }
            Response::json(200, &Json::obj(members))
        }
        Err(ClassifyError::Saturated) => Response::error(429, "classify queue is full"),
        Err(ClassifyError::ShuttingDown) => Response::error(503, "server is shutting down"),
        Err(ClassifyError::Model(e)) => Response::error(500, &e),
    }
}

/// `POST /models/{name}/classify` — parses and validates inline, resolves
/// the model (checking an optional pinned `version`), then submits to the
/// shared batcher; the batch dispatcher completes the response through the
/// event loop's completion queue.
fn classify(request: &Request, state: &Arc<ServerState>, name: &str, ctx: AsyncCtx) -> Routed {
    let entry = match state.registry.get(name) {
        Ok(entry) => entry,
        Err(e) => return Routed::Immediate(Response::error(404, &e.to_string())),
    };
    let body = match request.json_body() {
        Ok(b) => b,
        Err(e) => return Routed::Immediate(Response::error(400, &e)),
    };
    // version pinning: a client that resolved model metadata before a refit
    // can demand exactly that model and learn about the swap via 409 instead
    // of silently getting different predictions
    if let Some(pin) = body.get("version") {
        let Some(pin) = pin.as_u64() else {
            return Routed::Immediate(Response::error(
                400,
                "`version` must be a whole number below 2^53",
            ));
        };
        if pin != entry.info.version {
            return Routed::Immediate(Response::error(
                409,
                &format!(
                    "model `{name}` is at version {}, request pinned version {pin}",
                    entry.info.version
                ),
            ));
        }
    }
    let items = match body.get("series").and_then(|s| s.as_array()) {
        Some(items) => items,
        None => {
            return Routed::Immediate(Response::error(
                400,
                "classify request needs a `series` array",
            ))
        }
    };
    let want_proba = body.get("proba").and_then(|p| p.as_bool()).unwrap_or(false);
    let mut series = Vec::with_capacity(items.len());
    for item in items {
        match parse_series(item, false) {
            Ok(s) => series.push(s),
            Err(e) => return Routed::Immediate(Response::error(400, &e)),
        }
    }
    state.metrics.classify_requests_total.inc();

    let metrics = Arc::clone(&state.metrics);
    let model_name = name.to_string();
    let version = entry.info.version;
    ctx.trace.set_model(name);
    let batch_trace = Arc::clone(&ctx.trace);
    let on_done = Box::new(move |outcome: Result<ClassifyOutput, ClassifyError>| {
        metrics
            .classify_latency_seconds
            .observe(ctx.started.elapsed().as_secs_f64());
        let response = classify_response(&model_name, version, outcome);
        metrics.record_status(response.status);
        metrics
            .request_latency_seconds
            .observe(ctx.started.elapsed().as_secs_f64());
        ctx.trace.set_status(response.status);
        let bytes = {
            let _span = ctx.trace.span(Stage::Serialize);
            response.serialize(ctx.keep_alive)
        };
        ctx.completions.push(Completed {
            token: ctx.token,
            generation: ctx.generation,
            seq: ctx.seq,
            bytes,
            trace: Some(ctx.trace),
        });
    });
    match state.registry.batcher().submit_traced(
        Arc::clone(entry.classifier()),
        series,
        want_proba,
        Some(batch_trace),
        on_done,
    ) {
        Ok(()) => Routed::Async,
        Err(e @ ClassifyError::Saturated) => {
            Routed::Immediate(Response::error(429, &e.to_string()))
        }
        Err(e @ ClassifyError::ShuttingDown) => {
            Routed::Immediate(Response::error(503, &e.to_string()))
        }
        Err(ClassifyError::Model(e)) => Routed::Immediate(Response::error(500, &e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_series_accepts_both_shapes() {
        let bare = Json::parse("[1, 2.5, -3]").unwrap();
        let s = parse_series(&bare, false).unwrap();
        assert_eq!(s.values(), &[1.0, 2.5, -3.0]);
        assert_eq!(s.label(), None);

        let labeled = Json::parse(r#"{"values": [1, 2], "label": 4}"#).unwrap();
        let s = parse_series(&labeled, true).unwrap();
        assert_eq!(s.label(), Some(4));
    }

    #[test]
    fn parse_series_rejects_bad_input() {
        for (text, require_label) in [
            ("[]", false),
            ("[1, \"x\"]", false),
            ("[1, null]", false),
            ("3", false),
            (r#"{"values": [1]}"#, true),
            (r#"{"label": 1}"#, false),
            (r#"{"values": [1], "label": -2}"#, true),
        ] {
            let value = Json::parse(text).unwrap();
            assert!(
                parse_series(&value, require_label).is_err(),
                "accepted {text}"
            );
        }
    }
}
