//! The shared micro-batch scheduler.
//!
//! Concurrent `POST /models/{name}/classify` requests — for *any* registered
//! model — land in one bounded queue served by a single dispatcher thread.
//! The dispatcher coalesces them per model: it waits until either
//! [`BatchConfig::max_batch`] series have accumulated or
//! [`BatchConfig::max_wait`] has elapsed since the oldest queued request,
//! then takes the front request's model and collects every queued request
//! for that same model into one batch. Features are extracted for the whole
//! batch on the shared [`tsg_parallel::ThreadPool`] — each worker checking
//! one warmed-up [`MotifWorkspace`] out of a cross-batch pool and driving
//! [`extract_series_features_with`] with it — and the model runs once over
//! the batch.
//!
//! One dispatcher for the whole registry is the point: a fleet of 100
//! registered models costs one scheduler thread, not 100 idle ones, and the
//! warm workspace pool is shared across all of them. (The per-model
//! scheduler this replaced kept a dedicated dispatcher per registry entry.)
//!
//! Completion is a callback ([`SharedBatcher::submit`]): the event-loop
//! server passes a closure that enqueues the finished response and wakes the
//! loop via its eventfd, so no connection ever blocks a thread on a batch.
//! [`SharedBatcher::classify`] keeps the blocking convenience wrapper for
//! tests and in-process callers.
//!
//! Backpressure: when the queue already holds [`BatchConfig::queue_depth`]
//! series, submission returns [`ClassifyError::Saturated`] and the HTTP
//! layer answers `429 Too Many Requests`.
//!
//! Batching never changes results: feature extraction is per-series and
//! deterministic (workspace reuse is bit-neutral, pinned by the workspace
//! determinism tests), and the model predicts rows independently — so a
//! series classified in a batch of 64 gets the same label as one classified
//! alone. The end-to-end test in `tests/e2e.rs` asserts exactly this against
//! direct [`MvgClassifier::predict`] calls through the event-loop path.

use crate::metrics::ServerMetrics;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use tsg_core::{
    extract_series_features_traced, extract_series_features_with, ExtractStage, MvgClassifier,
    TraceSink,
};
use tsg_graph::motifs::MotifWorkspace;
use tsg_parallel::ThreadPool;
use tsg_trace::{Stage, StageSet, TraceHandle};
use tsg_ts::TimeSeries;

/// Tuning knobs of the micro-batch scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum series per dispatched batch.
    pub max_batch: usize,
    /// How long the oldest queued request may wait for co-batching.
    pub max_wait: Duration,
    /// Maximum queued series before new requests are rejected with 429.
    pub queue_depth: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 32,
            max_wait: Duration::from_millis(2),
            queue_depth: 256,
        }
    }
}

/// Why a classify call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassifyError {
    /// The queue is full; the client should retry later (maps to 429).
    Saturated,
    /// The batcher is shutting down (maps to 503).
    ShuttingDown,
    /// The underlying model failed (maps to 500).
    Model(String),
}

impl std::fmt::Display for ClassifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClassifyError::Saturated => write!(f, "classify queue is full"),
            ClassifyError::ShuttingDown => write!(f, "server is shutting down"),
            ClassifyError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

/// Result of one classify request.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifyOutput {
    /// Predicted class label per submitted series.
    pub predictions: Vec<usize>,
    /// Class probabilities per series (only when requested).
    pub probabilities: Option<Vec<Vec<f64>>>,
    /// Size (in series) of the micro-batch this request was dispatched in —
    /// observability for how well coalescing works.
    pub batch_size: usize,
}

/// Completion callback invoked exactly once with the request's result — from
/// the dispatcher thread, so it must be quick (enqueue + wake, or fill a
/// slot); never called when submission itself fails.
pub type OnDone = Box<dyn FnOnce(Result<ClassifyOutput, ClassifyError>) + Send + 'static>;

/// Locks a mutex, recovering the data if a panicking thread poisoned it.
/// Every structure guarded here is kept consistent under unwinding (the
/// compute path runs inside `catch_unwind` in [`run_batch`]), so a poisoned
/// lock only records that *some* thread died — refusing service forever
/// would escalate that into a total outage of the classify queue.
fn lock_recover<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// One queued classify request.
struct Job {
    model: Arc<MvgClassifier>,
    series: Vec<TimeSeries>,
    want_proba: bool,
    /// The request's trace, when the caller is tracing; spans recorded here
    /// from the dispatcher cover queue wait, coalescing, extraction
    /// sub-stages and the model pass.
    trace: Option<TraceHandle>,
    /// When [`SharedBatcher::submit`] enqueued the job — the start of its
    /// queue-wait span.
    submitted: Instant,
    on_done: OnDone,
}

/// Maps an extraction sub-stage to its request-level span.
fn request_stage(stage: ExtractStage) -> Stage {
    match stage {
        ExtractStage::Scale => Stage::Scale,
        ExtractStage::GraphBuild => Stage::GraphBuild,
        ExtractStage::MotifCount => Stage::MotifCount,
        ExtractStage::Statistical => Stage::Statistical,
    }
}

/// The serve-side [`TraceSink`]: a stack-local timer accumulating extraction
/// sub-stage durations into a [`StageSet`], flushed to the request's trace
/// once per series. The hot path touches no shared state — one `Instant`
/// read per bracket, one atomic add per *stage* at flush time.
#[derive(Default)]
struct StageTimer {
    stages: StageSet,
    current: Option<(ExtractStage, Instant)>,
}

impl TraceSink for StageTimer {
    fn enter(&mut self, stage: ExtractStage) {
        self.current = Some((stage, Instant::now()));
    }

    fn exit(&mut self, stage: ExtractStage) {
        if let Some((entered, started)) = self.current.take() {
            if entered == stage {
                self.stages
                    .add(request_stage(stage), started.elapsed().as_micros() as u64);
            }
        }
    }
}

/// Rendezvous for the blocking [`SharedBatcher::classify`] wrapper.
struct Slot {
    result: Mutex<Option<Result<ClassifyOutput, ClassifyError>>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Arc<Slot> {
        Arc::new(Slot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn fill(&self, result: Result<ClassifyOutput, ClassifyError>) {
        *lock_recover(&self.result) = Some(result);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<ClassifyOutput, ClassifyError> {
        let mut guard = lock_recover(&self.result);
        loop {
            if let Some(result) = guard.take() {
                return result;
            }
            guard = self
                .ready
                .wait(guard)
                .unwrap_or_else(|poison| poison.into_inner());
        }
    }
}

struct Queue {
    jobs: VecDeque<Job>,
    /// Total series across `jobs` (the backpressure unit).
    queued_series: usize,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    /// Signalled when a job arrives or shutdown is requested.
    wake: Condvar,
    config: BatchConfig,
    pool: ThreadPool,
    metrics: Arc<ServerMetrics>,
    workspaces: WorkspacePool,
}

/// A checkout pool of [`MotifWorkspace`]s. The `tsg_parallel` pool spawns
/// fresh scoped worker threads per `map` call, so a `thread_local` workspace
/// would die with each batch's workers; keeping the warmed-up workspaces
/// here instead makes the reuse survive across batches — and across *all*
/// models, since the batcher is shared (the pool grows to at most the number
/// of concurrent workers). The checkout lock is touched once per series,
/// which is noise next to a motif-kernel run.
#[derive(Default)]
struct WorkspacePool {
    stack: Mutex<Vec<MotifWorkspace>>,
}

impl WorkspacePool {
    fn with<R>(&self, f: impl FnOnce(&mut MotifWorkspace) -> R) -> R {
        let mut workspace = lock_recover(&self.stack).pop().unwrap_or_default();
        let result = f(&mut workspace);
        lock_recover(&self.stack).push(workspace);
        result
    }
}

/// The registry-wide micro-batch scheduler. Owns one dispatcher thread;
/// dropping the batcher drains the queue with `ShuttingDown` errors and
/// joins it.
pub struct SharedBatcher {
    shared: Arc<Shared>,
    /// Joined on shutdown; behind a mutex so `shutdown` works through an
    /// `Arc<SharedBatcher>` shared between the registry and the event loop.
    dispatcher: Mutex<Option<std::thread::JoinHandle<()>>>,
    accepting: AtomicBool,
}

impl SharedBatcher {
    /// Spawns the dispatcher. Fails (instead of panicking) when the
    /// dispatcher thread cannot be spawned — under thread exhaustion the
    /// caller maps this to a wire error rather than taking the whole server
    /// down.
    pub fn new(
        config: BatchConfig,
        pool: ThreadPool,
        metrics: Arc<ServerMetrics>,
    ) -> std::io::Result<SharedBatcher> {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                queued_series: 0,
                shutdown: false,
            }),
            wake: Condvar::new(),
            config,
            pool,
            metrics,
            workspaces: WorkspacePool::default(),
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tsg-serve-batcher".into())
                .spawn(move || dispatch_loop(&shared))?
        };
        Ok(SharedBatcher {
            shared,
            dispatcher: Mutex::new(Some(dispatcher)),
            accepting: AtomicBool::new(true),
        })
    }

    /// Submits one request; `on_done` fires from the dispatcher once the
    /// request's batch has run. When submission fails (saturated queue /
    /// shutdown) the error is returned synchronously and `on_done` is never
    /// invoked — the caller still owns its response. An empty series list
    /// completes inline without touching the queue.
    pub fn submit(
        &self,
        model: Arc<MvgClassifier>,
        series: Vec<TimeSeries>,
        want_proba: bool,
        on_done: OnDone,
    ) -> Result<(), ClassifyError> {
        self.submit_traced(model, series, want_proba, None, on_done)
    }

    /// [`SharedBatcher::submit`] with the request's trace attached: the
    /// dispatcher records queue-wait, batch-coalesce, extraction sub-stage
    /// and predict spans onto it as the job moves through the batch.
    pub fn submit_traced(
        &self,
        model: Arc<MvgClassifier>,
        series: Vec<TimeSeries>,
        want_proba: bool,
        trace: Option<TraceHandle>,
        on_done: OnDone,
    ) -> Result<(), ClassifyError> {
        if series.is_empty() {
            on_done(Ok(ClassifyOutput {
                predictions: Vec::new(),
                probabilities: want_proba.then(Vec::new),
                batch_size: 0,
            }));
            return Ok(());
        }
        if !self.accepting.load(Ordering::Acquire) {
            return Err(ClassifyError::ShuttingDown);
        }
        {
            let mut queue = lock_recover(&self.shared.queue);
            if queue.shutdown {
                return Err(ClassifyError::ShuttingDown);
            }
            // a single oversized request is still accepted when the queue is
            // otherwise empty, so queue_depth bounds memory without imposing
            // a hard cap on request size
            if queue.queued_series + series.len() > self.shared.config.queue_depth
                && queue.queued_series > 0
            {
                self.shared.metrics.classify_rejected_total.inc();
                return Err(ClassifyError::Saturated);
            }
            queue.queued_series += series.len();
            queue.jobs.push_back(Job {
                model,
                series,
                want_proba,
                trace,
                submitted: Instant::now(),
                on_done,
            });
        }
        self.shared.wake.notify_one();
        Ok(())
    }

    /// Blocking convenience over [`SharedBatcher::submit`]: parks the
    /// calling thread until the batch has been dispatched. Used by tests and
    /// in-process callers; the event loop never blocks here.
    pub fn classify(
        &self,
        model: Arc<MvgClassifier>,
        series: Vec<TimeSeries>,
        want_proba: bool,
    ) -> Result<ClassifyOutput, ClassifyError> {
        let slot = Slot::new();
        let filler = Arc::clone(&slot);
        self.submit(
            model,
            series,
            want_proba,
            Box::new(move |result| filler.fill(result)),
        )?;
        slot.wait()
    }

    /// Stops accepting new work, fails queued jobs and joins the dispatcher.
    /// Idempotent; callable through a shared reference.
    pub fn shutdown(&self) {
        self.accepting.store(false, Ordering::Release);
        {
            let mut queue = lock_recover(&self.shared.queue);
            queue.shutdown = true;
            for job in queue.jobs.drain(..) {
                (job.on_done)(Err(ClassifyError::ShuttingDown));
            }
            queue.queued_series = 0;
        }
        self.shared.wake.notify_all();
        if let Some(handle) = lock_recover(&self.dispatcher).take() {
            let _ = handle.join();
        }
    }
}

impl Drop for SharedBatcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn dispatch_loop(shared: &Shared) {
    loop {
        let Some((batch, seen)) = collect_batch(shared) else {
            return; // shutdown with an empty queue
        };
        run_batch(shared, batch, seen);
    }
}

/// Blocks until at least one job is queued, then keeps collecting until the
/// queue holds a full batch worth of series or the oldest job has waited
/// `max_wait` — then takes the *front* job's model and pulls every queued
/// job for that model (up to `max_batch` series) into one batch, leaving
/// other models' jobs queued in arrival order for the next round. Returns
/// the batch plus the instant the dispatcher first *saw* work this round —
/// the boundary between a job's queue-wait and batch-coalesce spans.
/// Returns `None` on shutdown.
fn collect_batch(shared: &Shared) -> Option<(Vec<Job>, Instant)> {
    let mut queue = lock_recover(&shared.queue);
    loop {
        if queue.shutdown {
            return None;
        }
        if !queue.jobs.is_empty() {
            break;
        }
        queue = shared
            .wake
            .wait(queue)
            .unwrap_or_else(|poison| poison.into_inner());
    }
    let seen = Instant::now();
    let deadline = seen + shared.config.max_wait;
    loop {
        if queue.shutdown {
            return None;
        }
        if queue.queued_series >= shared.config.max_batch {
            break;
        }
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        let (next, timeout) = shared
            .wake
            .wait_timeout(queue, deadline - now)
            .unwrap_or_else(|poison| poison.into_inner());
        queue = next;
        if timeout.timed_out() {
            break;
        }
    }
    // group by the front job's model: whole jobs only, always at least one
    // (so an oversized request still dispatches), skipping other models
    let front_model = Arc::clone(&queue.jobs.front()?.model);
    let mut batch = Vec::new();
    let mut batch_series = 0usize;
    let mut rest = VecDeque::with_capacity(queue.jobs.len());
    while let Some(job) = queue.jobs.pop_front() {
        let same_model = Arc::ptr_eq(&job.model, &front_model);
        let fits = batch.is_empty() || batch_series + job.series.len() <= shared.config.max_batch;
        if same_model && fits {
            batch_series += job.series.len();
            batch.push(job);
        } else {
            rest.push_back(job);
        }
    }
    queue.jobs = rest;
    queue.queued_series = queue.queued_series.saturating_sub(batch_series);
    if !queue.jobs.is_empty() {
        // other models (or overflow of this one) remain: make sure the
        // dispatcher comes straight back instead of parking on the condvar
        shared.wake.notify_one();
    }
    Some((batch, seen))
}

/// Extracts features for every series of the batch on the pool and runs the
/// batch's model once, then distributes per-job results.
///
/// Panic-safe: a panic anywhere in the compute path (extraction, model,
/// slicing) is caught and every job's completion is invoked with an error,
/// so no submitter is ever left waiting forever and the dispatcher thread
/// survives to serve the next batch.
fn run_batch(shared: &Shared, batch: Vec<Job>, seen: Instant) {
    let batch_size: usize = batch.iter().map(|j| j.series.len()).sum();
    shared.metrics.classify_batches_total.inc();
    shared.metrics.classify_series_total.add(batch_size as u64);
    shared.metrics.batch_size.observe(batch_size as f64);

    // split each job's time-in-queue into two disjoint spans: queue-wait
    // (submit → dispatcher saw work, or 0 for jobs that arrived during the
    // coalescing window) and batch-coalesce (the rest, up to dispatch)
    let dispatched = Instant::now();
    for job in &batch {
        if let Some(trace) = &job.trace {
            let seen_for_job = seen.max(job.submitted);
            trace.record(
                Stage::QueueWait,
                seen_for_job.saturating_duration_since(job.submitted),
            );
            trace.record(
                Stage::BatchCoalesce,
                dispatched.saturating_duration_since(seen_for_job),
            );
        }
    }

    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        compute_batch(shared, &batch, batch_size)
    }));
    match outcome {
        Ok(Ok(outputs)) => {
            for (job, output) in batch.into_iter().zip(outputs) {
                (job.on_done)(Ok(output));
            }
        }
        Ok(Err(error)) => {
            for job in batch {
                (job.on_done)(Err(error.clone()));
            }
        }
        Err(_) => {
            let error = ClassifyError::Model("batch dispatch panicked".to_string());
            for job in batch {
                (job.on_done)(Err(error.clone()));
            }
        }
    }
}

/// The compute path of one batch: pooled feature extraction (reusing warmed
/// workspaces) plus one padded/scaled model pass; probabilities are computed
/// on the same transformed matrix only when some job asked for them. All
/// jobs share one model (grouped by [`collect_batch`]).
fn compute_batch(
    shared: &Shared,
    batch: &[Job],
    batch_size: usize,
) -> Result<Vec<ClassifyOutput>, ClassifyError> {
    let Some(front) = batch.first() else {
        return Ok(Vec::new());
    };
    let model = &front.model;
    let items: Vec<(&TimeSeries, Option<&TraceHandle>)> = batch
        .iter()
        .flat_map(|j| j.series.iter().map(move |s| (s, j.trace.as_ref())))
        .collect();
    let features = model.config().features.clone();
    let rows: Vec<Vec<f64>> = shared.pool.map(&items, |&(series, trace)| {
        shared.workspaces.with(|ws| match trace {
            Some(trace) => {
                let mut sink = StageTimer::default();
                let row = extract_series_features_traced(series, &features, ws, &mut sink);
                sink.stages.flush(trace);
                row
            }
            None => extract_series_features_with(series, &features, ws),
        })
    });

    let want_any_proba = batch.iter().any(|j| j.want_proba);
    let predict_started = Instant::now();
    let (predictions, probabilities) = if want_any_proba {
        let (p, proba) = model
            .predict_with_proba_from_feature_rows(rows)
            .map_err(|e| ClassifyError::Model(e.to_string()))?;
        (p, Some(proba))
    } else {
        let p = model
            .predict_from_feature_rows(rows)
            .map_err(|e| ClassifyError::Model(e.to_string()))?;
        (p, None)
    };
    // one model pass serves the whole batch; every traced request in it
    // waited on that same pass, so each gets the full predict duration
    let predict_elapsed = predict_started.elapsed();
    for job in batch {
        if let Some(trace) = &job.trace {
            trace.record(Stage::Predict, predict_elapsed);
        }
    }
    if predictions.len() != batch_size {
        return Err(ClassifyError::Model(format!(
            "model returned {} predictions for {batch_size} series",
            predictions.len()
        )));
    }

    let mut outputs = Vec::with_capacity(batch.len());
    let mut offset = 0usize;
    for job in batch {
        let n = job.series.len();
        let range_error = || {
            ClassifyError::Model(format!(
                "result slice {offset}..{} out of range",
                offset + n
            ))
        };
        let job_predictions = predictions
            .get(offset..offset + n)
            .ok_or_else(range_error)?;
        let job_probabilities = if job.want_proba {
            match &probabilities {
                Some(p) => Some(p.get(offset..offset + n).ok_or_else(range_error)?.to_vec()),
                None => None,
            }
        } else {
            None
        };
        outputs.push(ClassifyOutput {
            predictions: job_predictions.to_vec(),
            probabilities: job_probabilities,
            batch_size,
        });
        offset += n;
    }
    Ok(outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_core::{ClassifierChoice, FeatureConfig, MvgConfig};
    use tsg_ml::gbt::GradientBoostingParams;
    use tsg_ts::Dataset;

    fn tiny_model(seed: u64) -> Arc<MvgClassifier> {
        let mut train = Dataset::new("tiny");
        for i in 0..8 {
            let label = i % 2;
            let values: Vec<f64> = (0..64)
                .map(|t| {
                    if label == 0 {
                        ((t as f64) * 0.4).sin()
                    } else {
                        ((t * 31 + i * 17) % 23) as f64 / 23.0
                    }
                })
                .collect();
            train.push(TimeSeries::with_label(values, label));
        }
        let config = MvgConfig {
            features: FeatureConfig::uvg(),
            classifier: ClassifierChoice::GradientBoosting(GradientBoostingParams {
                n_estimators: 10,
                max_depth: 2,
                ..Default::default()
            }),
            oversample: false,
            n_threads: 1,
            seed,
        };
        let mut clf = MvgClassifier::new(config);
        clf.fit(&train).unwrap();
        Arc::new(clf)
    }

    fn test_series(n: usize) -> Vec<TimeSeries> {
        (0..n)
            .map(|i| {
                TimeSeries::new(
                    (0..64)
                        .map(|t| ((t as f64) * 0.1 * (i + 1) as f64).sin())
                        .collect(),
                )
            })
            .collect()
    }

    fn batcher(config: BatchConfig) -> SharedBatcher {
        SharedBatcher::new(
            config,
            ThreadPool::new(2),
            Arc::new(ServerMetrics::default()),
        )
        .expect("spawn batcher")
    }

    #[test]
    fn batched_results_match_direct_predictions() {
        let model = tiny_model(1);
        let series = test_series(6);
        let direct = model
            .predict(&Dataset::from_series("q", series.clone()))
            .unwrap();
        let b = batcher(BatchConfig::default());
        let out = b.classify(Arc::clone(&model), series, true).unwrap();
        assert_eq!(out.predictions, direct);
        let proba = out.probabilities.unwrap();
        assert_eq!(proba.len(), 6);
        for p in proba {
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn submit_completes_through_the_callback() {
        let model = tiny_model(1);
        let series = test_series(2);
        let direct = model
            .predict(&Dataset::from_series("q", series.clone()))
            .unwrap();
        let b = batcher(BatchConfig::default());
        let (tx, rx) = std::sync::mpsc::channel();
        b.submit(
            Arc::clone(&model),
            series,
            false,
            Box::new(move |result| tx.send(result).unwrap()),
        )
        .unwrap();
        let out = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("callback fired")
            .unwrap();
        assert_eq!(out.predictions, direct);

        // empty submission completes inline
        let (tx, rx) = std::sync::mpsc::channel();
        b.submit(
            Arc::clone(&model),
            Vec::new(),
            true,
            Box::new(move |result| tx.send(result).unwrap()),
        )
        .unwrap();
        let out = rx.try_recv().expect("inline completion").unwrap();
        assert!(out.predictions.is_empty());
        assert_eq!(out.probabilities, Some(Vec::new()));
    }

    #[test]
    fn two_models_share_one_dispatcher_without_mixing() {
        // the scale step: many models, one scheduler. Interleave submissions
        // for two differently seeded models and check every prediction
        // matches that model's own direct output — a mixed batch would run
        // the wrong model over someone's series.
        let model_a = tiny_model(1);
        let model_b = tiny_model(99);
        let series = test_series(10);
        let direct_a = model_a
            .predict(&Dataset::from_series("q", series.clone()))
            .unwrap();
        let direct_b = model_b
            .predict(&Dataset::from_series("q", series.clone()))
            .unwrap();
        let config = BatchConfig {
            max_batch: 64,
            max_wait: Duration::from_millis(20),
            queue_depth: 256,
        };
        let b = batcher(config);
        let results: Vec<(usize, bool, ClassifyOutput)> = std::thread::scope(|scope| {
            series
                .iter()
                .enumerate()
                .flat_map(|(i, s)| {
                    [(i, true, s.clone()), (i, false, s.clone())]
                        .into_iter()
                        .map(|(i, use_a, s)| {
                            let b = &b;
                            let model = if use_a { &model_a } else { &model_b };
                            let model = Arc::clone(model);
                            scope.spawn(move || {
                                (i, use_a, b.classify(model, vec![s], false).unwrap())
                            })
                        })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for (i, used_a, out) in results {
            let expected = if used_a { direct_a[i] } else { direct_b[i] };
            assert_eq!(
                out.predictions,
                vec![expected],
                "series {i} model_a={used_a}"
            );
        }
    }

    #[test]
    fn concurrent_submissions_coalesce_and_match() {
        let model = tiny_model(1);
        let config = BatchConfig {
            max_batch: 64,
            max_wait: Duration::from_millis(30),
            queue_depth: 256,
        };
        let b = batcher(config);
        let series = test_series(12);
        let direct = model
            .predict(&Dataset::from_series("q", series.clone()))
            .unwrap();
        let results: Vec<(usize, ClassifyOutput)> = std::thread::scope(|scope| {
            series
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let b = &b;
                    let model = Arc::clone(&model);
                    let s = s.clone();
                    scope.spawn(move || (i, b.classify(model, vec![s], false).unwrap()))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let mut coalesced = false;
        for (i, out) in results {
            assert_eq!(out.predictions, vec![direct[i]], "series {i}");
            if out.batch_size > 1 {
                coalesced = true;
            }
        }
        // 12 concurrent single-series requests with a 30 ms window on a
        // model whose batch takes ~ms: at least some must share a batch
        assert!(coalesced, "no request was ever co-batched");
    }

    #[test]
    fn saturation_returns_queue_full() {
        let model = tiny_model(1);
        let config = BatchConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            queue_depth: 2,
        };
        let metrics = Arc::new(ServerMetrics::default());
        let b = SharedBatcher::new(config, ThreadPool::new(1), Arc::clone(&metrics))
            .expect("spawn batcher");
        // submit from many threads; with depth 2 some must be rejected,
        // while every accepted one completes correctly
        let series = test_series(1);
        let outcomes: Vec<Result<ClassifyOutput, ClassifyError>> = std::thread::scope(|scope| {
            (0..24)
                .map(|_| {
                    let b = &b;
                    let model = Arc::clone(&model);
                    let s = series[0].clone();
                    scope.spawn(move || b.classify(model, vec![s], false))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let ok = outcomes.iter().filter(|r| r.is_ok()).count();
        assert!(ok >= 1, "at least one request must be served");
        for outcome in outcomes {
            if let Err(e) = outcome {
                assert_eq!(e, ClassifyError::Saturated);
            }
        }
        assert_eq!(
            metrics.classify_rejected_total.get() as usize,
            24 - ok,
            "every non-ok outcome must be a counted rejection"
        );
    }

    #[test]
    fn oversized_request_still_dispatches() {
        let model = tiny_model(1);
        let config = BatchConfig {
            max_batch: 2,
            max_wait: Duration::from_millis(1),
            queue_depth: 4,
        };
        let b = batcher(config);
        let series = test_series(7); // bigger than both max_batch and depth
        let direct = model
            .predict(&Dataset::from_series("q", series.clone()))
            .unwrap();
        let out = b.classify(Arc::clone(&model), series, false).unwrap();
        assert_eq!(out.predictions, direct);
        assert_eq!(out.batch_size, 7);
    }

    #[test]
    fn traced_submission_populates_batch_stage_spans() {
        let model = tiny_model(1);
        let b = batcher(BatchConfig::default());
        let trace = tsg_trace::ActiveTrace::begin("/models/tiny/classify", 0);
        let (tx, rx) = std::sync::mpsc::channel();
        b.submit_traced(
            Arc::clone(&model),
            test_series(32),
            true,
            Some(Arc::clone(&trace)),
            Box::new(move |result| tx.send(result).unwrap()),
        )
        .unwrap();
        rx.recv_timeout(Duration::from_secs(10))
            .expect("callback fired")
            .unwrap();
        let finished = trace.finish(0);
        let micros = |s: Stage| finished.stage(s);
        // the model pass and the graph-build/motif-count kernels over 32
        // series always take a measurable amount of time; scale stays zero
        // for the uniscale config
        assert!(micros(Stage::Predict) > 0, "{finished:?}");
        assert!(micros(Stage::GraphBuild) > 0, "{finished:?}");
        assert!(micros(Stage::MotifCount) > 0, "{finished:?}");
        assert_eq!(micros(Stage::Scale), 0, "uniscale never scales");
    }

    #[test]
    fn shutdown_rejects_new_work() {
        let model = tiny_model(1);
        let b = batcher(BatchConfig::default());
        b.shutdown();
        let err = b
            .classify(Arc::clone(&model), test_series(1), false)
            .unwrap_err();
        assert_eq!(err, ClassifyError::ShuttingDown);
    }
}
