//! The micro-batch scheduler.
//!
//! Concurrent `POST /models/{name}/classify` requests for one model land in
//! a bounded queue. A dedicated dispatcher thread coalesces them: it waits
//! until either [`BatchConfig::max_batch`] series have accumulated or
//! [`BatchConfig::max_wait`] has elapsed since the oldest queued request,
//! then extracts features for the whole batch on the shared
//! [`tsg_parallel::ThreadPool`] — each worker checking one warmed-up
//! [`MotifWorkspace`] out of a per-model pool and driving
//! [`extract_series_features_with`] with it, so the motif kernel's scratch
//! memory survives across batches — and runs the model once over the batch.
//! Results are fanned back out to the waiting request handlers.
//!
//! Backpressure: when the queue already holds [`BatchConfig::queue_depth`]
//! series, [`Batcher::classify`] returns [`ClassifyError::Saturated`] and
//! the HTTP layer answers `429 Too Many Requests`.
//!
//! Batching never changes results: feature extraction is per-series and
//! deterministic (workspace reuse is bit-neutral, pinned by the workspace
//! determinism tests), and the model predicts rows independently — so a
//! series classified in a batch of 64 gets the same label as one classified
//! alone. The end-to-end test in `tests/e2e.rs` asserts exactly this against
//! direct [`MvgClassifier::predict`] calls.

use crate::metrics::ServerMetrics;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use tsg_core::{extract_series_features_with, MvgClassifier};
use tsg_graph::motifs::MotifWorkspace;
use tsg_parallel::ThreadPool;
use tsg_ts::TimeSeries;

/// Tuning knobs of the micro-batch scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum series per dispatched batch.
    pub max_batch: usize,
    /// How long the oldest queued request may wait for co-batching.
    pub max_wait: Duration,
    /// Maximum queued series before new requests are rejected with 429.
    pub queue_depth: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 32,
            max_wait: Duration::from_millis(2),
            queue_depth: 256,
        }
    }
}

/// Why a classify call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassifyError {
    /// The queue is full; the client should retry later (maps to 429).
    Saturated,
    /// The batcher is shutting down (maps to 503).
    ShuttingDown,
    /// The underlying model failed (maps to 500).
    Model(String),
}

impl std::fmt::Display for ClassifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClassifyError::Saturated => write!(f, "classify queue is full"),
            ClassifyError::ShuttingDown => write!(f, "server is shutting down"),
            ClassifyError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

/// Result of one classify request.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifyOutput {
    /// Predicted class label per submitted series.
    pub predictions: Vec<usize>,
    /// Class probabilities per series (only when requested).
    pub probabilities: Option<Vec<Vec<f64>>>,
    /// Size (in series) of the micro-batch this request was dispatched in —
    /// observability for how well coalescing works.
    pub batch_size: usize,
}

/// Locks a mutex, recovering the data if a panicking thread poisoned it.
/// Every structure guarded here is kept consistent under unwinding (the
/// compute path runs inside `catch_unwind` in [`run_batch`]), so a poisoned
/// lock only records that *some* thread died — refusing service forever
/// would escalate that into a total outage of the model's queue.
fn lock_recover<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// One queued classify request.
struct Job {
    series: Vec<TimeSeries>,
    want_proba: bool,
    slot: Arc<Slot>,
}

/// Rendezvous between the request handler and the dispatcher.
struct Slot {
    result: Mutex<Option<Result<ClassifyOutput, ClassifyError>>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Arc<Slot> {
        Arc::new(Slot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn fill(&self, result: Result<ClassifyOutput, ClassifyError>) {
        *lock_recover(&self.result) = Some(result);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<ClassifyOutput, ClassifyError> {
        let mut guard = lock_recover(&self.result);
        loop {
            if let Some(result) = guard.take() {
                return result;
            }
            guard = self
                .ready
                .wait(guard)
                .unwrap_or_else(|poison| poison.into_inner());
        }
    }
}

struct Queue {
    jobs: VecDeque<Job>,
    /// Total series across `jobs` (the backpressure unit).
    queued_series: usize,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    /// Signalled when a job arrives or shutdown is requested.
    wake: Condvar,
    config: BatchConfig,
    model: Arc<MvgClassifier>,
    pool: ThreadPool,
    metrics: Arc<ServerMetrics>,
    workspaces: WorkspacePool,
}

/// A checkout pool of [`MotifWorkspace`]s. The `tsg_parallel` pool spawns
/// fresh scoped worker threads per `map` call, so a `thread_local` workspace
/// would die with each batch's workers; keeping the warmed-up workspaces
/// here instead makes the reuse survive across batches (the pool grows to at
/// most the number of concurrent workers). The checkout lock is touched once
/// per series, which is noise next to a motif-kernel run.
#[derive(Default)]
struct WorkspacePool {
    stack: Mutex<Vec<MotifWorkspace>>,
}

impl WorkspacePool {
    fn with<R>(&self, f: impl FnOnce(&mut MotifWorkspace) -> R) -> R {
        let mut workspace = lock_recover(&self.stack).pop().unwrap_or_default();
        let result = f(&mut workspace);
        lock_recover(&self.stack).push(workspace);
        result
    }
}

/// The per-model micro-batch scheduler. Owns one dispatcher thread; dropping
/// the batcher drains the queue with `ShuttingDown` errors and joins it.
pub struct Batcher {
    shared: Arc<Shared>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
    accepting: AtomicBool,
}

impl Batcher {
    /// Spawns the dispatcher for a fitted model. Fails (instead of
    /// panicking) when the dispatcher thread cannot be spawned — under
    /// thread exhaustion the caller maps this to a wire error rather than
    /// taking the whole server down.
    pub fn new(
        model: Arc<MvgClassifier>,
        config: BatchConfig,
        pool: ThreadPool,
        metrics: Arc<ServerMetrics>,
    ) -> std::io::Result<Batcher> {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                queued_series: 0,
                shutdown: false,
            }),
            wake: Condvar::new(),
            config,
            model,
            pool,
            metrics,
            workspaces: WorkspacePool::default(),
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tsg-serve-batcher".into())
                .spawn(move || dispatch_loop(&shared))?
        };
        Ok(Batcher {
            shared,
            dispatcher: Some(dispatcher),
            accepting: AtomicBool::new(true),
        })
    }

    /// The model this batcher serves.
    pub fn model(&self) -> &Arc<MvgClassifier> {
        &self.shared.model
    }

    /// Submits one request and blocks until its batch has been dispatched.
    pub fn classify(
        &self,
        series: Vec<TimeSeries>,
        want_proba: bool,
    ) -> Result<ClassifyOutput, ClassifyError> {
        if series.is_empty() {
            return Ok(ClassifyOutput {
                predictions: Vec::new(),
                probabilities: want_proba.then(Vec::new),
                batch_size: 0,
            });
        }
        if !self.accepting.load(Ordering::Acquire) {
            return Err(ClassifyError::ShuttingDown);
        }
        let slot = Slot::new();
        {
            let mut queue = lock_recover(&self.shared.queue);
            if queue.shutdown {
                return Err(ClassifyError::ShuttingDown);
            }
            // a single oversized request is still accepted when the queue is
            // otherwise empty, so queue_depth bounds memory without imposing
            // a hard cap on request size
            if queue.queued_series + series.len() > self.shared.config.queue_depth
                && queue.queued_series > 0
            {
                self.shared.metrics.classify_rejected_total.inc();
                return Err(ClassifyError::Saturated);
            }
            queue.queued_series += series.len();
            queue.jobs.push_back(Job {
                series,
                want_proba,
                slot: Arc::clone(&slot),
            });
        }
        self.shared.wake.notify_one();
        slot.wait()
    }

    /// Stops accepting new work, fails queued jobs and joins the dispatcher.
    pub fn shutdown(&mut self) {
        self.accepting.store(false, Ordering::Release);
        {
            let mut queue = lock_recover(&self.shared.queue);
            queue.shutdown = true;
            for job in queue.jobs.drain(..) {
                job.slot.fill(Err(ClassifyError::ShuttingDown));
            }
            queue.queued_series = 0;
        }
        self.shared.wake.notify_all();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn dispatch_loop(shared: &Shared) {
    loop {
        let batch = collect_batch(shared);
        let Some(batch) = batch else {
            return; // shutdown with an empty queue
        };
        run_batch(shared, batch);
    }
}

/// Blocks until at least one job is queued, then keeps collecting jobs until
/// the batch is full or the oldest job has waited `max_wait`. Returns `None`
/// on shutdown.
fn collect_batch(shared: &Shared) -> Option<Vec<Job>> {
    let mut queue = lock_recover(&shared.queue);
    loop {
        if queue.shutdown {
            return None;
        }
        if !queue.jobs.is_empty() {
            break;
        }
        queue = shared
            .wake
            .wait(queue)
            .unwrap_or_else(|poison| poison.into_inner());
    }
    let deadline = Instant::now() + shared.config.max_wait;
    loop {
        if queue.shutdown {
            return None;
        }
        let queued: usize = queue.queued_series;
        if queued >= shared.config.max_batch {
            break;
        }
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        let (next, timeout) = shared
            .wake
            .wait_timeout(queue, deadline - now)
            .unwrap_or_else(|poison| poison.into_inner());
        queue = next;
        if timeout.timed_out() {
            break;
        }
    }
    // take whole jobs until the batch is full (always at least one job, so
    // an oversized request still dispatches)
    let mut batch = Vec::new();
    let mut batch_series = 0usize;
    loop {
        let fits = match queue.jobs.front() {
            Some(job) => {
                batch.is_empty() || batch_series + job.series.len() <= shared.config.max_batch
            }
            None => false,
        };
        if !fits {
            break;
        }
        let Some(job) = queue.jobs.pop_front() else {
            break;
        };
        batch_series += job.series.len();
        queue.queued_series = queue.queued_series.saturating_sub(job.series.len());
        batch.push(job);
    }
    Some(batch)
}

/// Extracts features for every series of the batch on the pool and runs the
/// model once, then distributes per-job results.
///
/// Panic-safe: a panic anywhere in the compute path (extraction, model,
/// slicing) is caught and every job's slot is filled with an error, so no
/// connection handler is ever left waiting on a condvar forever and the
/// dispatcher thread survives to serve the next batch.
fn run_batch(shared: &Shared, batch: Vec<Job>) {
    let batch_size: usize = batch.iter().map(|j| j.series.len()).sum();
    shared.metrics.classify_batches_total.inc();
    shared.metrics.classify_series_total.add(batch_size as u64);
    shared.metrics.batch_size.observe(batch_size as f64);

    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        compute_batch(shared, &batch, batch_size)
    }));
    match outcome {
        Ok(Ok(outputs)) => {
            for (job, output) in batch.into_iter().zip(outputs) {
                job.slot.fill(Ok(output));
            }
        }
        Ok(Err(error)) => {
            for job in batch {
                job.slot.fill(Err(error.clone()));
            }
        }
        Err(_) => {
            let error = ClassifyError::Model("batch dispatch panicked".to_string());
            for job in batch {
                job.slot.fill(Err(error.clone()));
            }
        }
    }
}

/// The compute path of one batch: pooled feature extraction (reusing warmed
/// workspaces) plus one padded/scaled model pass; probabilities are computed
/// on the same transformed matrix only when some job asked for them.
fn compute_batch(
    shared: &Shared,
    batch: &[Job],
    batch_size: usize,
) -> Result<Vec<ClassifyOutput>, ClassifyError> {
    let all_series: Vec<&TimeSeries> = batch.iter().flat_map(|j| j.series.iter()).collect();
    let features = shared.model.config().features.clone();
    let rows: Vec<Vec<f64>> = shared.pool.map(&all_series, |series| {
        shared
            .workspaces
            .with(|ws| extract_series_features_with(series, &features, ws))
    });

    let want_any_proba = batch.iter().any(|j| j.want_proba);
    let (predictions, probabilities) = if want_any_proba {
        let (p, proba) = shared
            .model
            .predict_with_proba_from_feature_rows(rows)
            .map_err(|e| ClassifyError::Model(e.to_string()))?;
        (p, Some(proba))
    } else {
        let p = shared
            .model
            .predict_from_feature_rows(rows)
            .map_err(|e| ClassifyError::Model(e.to_string()))?;
        (p, None)
    };
    if predictions.len() != batch_size {
        return Err(ClassifyError::Model(format!(
            "model returned {} predictions for {batch_size} series",
            predictions.len()
        )));
    }

    let mut outputs = Vec::with_capacity(batch.len());
    let mut offset = 0usize;
    for job in batch {
        let n = job.series.len();
        let range_error = || {
            ClassifyError::Model(format!(
                "result slice {offset}..{} out of range",
                offset + n
            ))
        };
        let job_predictions = predictions
            .get(offset..offset + n)
            .ok_or_else(range_error)?;
        let job_probabilities = if job.want_proba {
            match &probabilities {
                Some(p) => Some(p.get(offset..offset + n).ok_or_else(range_error)?.to_vec()),
                None => None,
            }
        } else {
            None
        };
        outputs.push(ClassifyOutput {
            predictions: job_predictions.to_vec(),
            probabilities: job_probabilities,
            batch_size,
        });
        offset += n;
    }
    Ok(outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_core::{ClassifierChoice, FeatureConfig, MvgConfig};
    use tsg_ml::gbt::GradientBoostingParams;
    use tsg_ts::Dataset;

    fn tiny_model() -> Arc<MvgClassifier> {
        let mut train = Dataset::new("tiny");
        for i in 0..8 {
            let label = i % 2;
            let values: Vec<f64> = (0..64)
                .map(|t| {
                    if label == 0 {
                        ((t as f64) * 0.4).sin()
                    } else {
                        ((t * 31 + i * 17) % 23) as f64 / 23.0
                    }
                })
                .collect();
            train.push(TimeSeries::with_label(values, label));
        }
        let config = MvgConfig {
            features: FeatureConfig::uvg(),
            classifier: ClassifierChoice::GradientBoosting(GradientBoostingParams {
                n_estimators: 10,
                max_depth: 2,
                ..Default::default()
            }),
            oversample: false,
            n_threads: 1,
            seed: 1,
        };
        let mut clf = MvgClassifier::new(config);
        clf.fit(&train).unwrap();
        Arc::new(clf)
    }

    fn test_series(n: usize) -> Vec<TimeSeries> {
        (0..n)
            .map(|i| {
                TimeSeries::new(
                    (0..64)
                        .map(|t| ((t as f64) * 0.1 * (i + 1) as f64).sin())
                        .collect(),
                )
            })
            .collect()
    }

    fn batcher(model: &Arc<MvgClassifier>, config: BatchConfig) -> Batcher {
        Batcher::new(
            Arc::clone(model),
            config,
            ThreadPool::new(2),
            Arc::new(ServerMetrics::default()),
        )
        .expect("spawn batcher")
    }

    #[test]
    fn batched_results_match_direct_predictions() {
        let model = tiny_model();
        let series = test_series(6);
        let direct = model
            .predict(&Dataset::from_series("q", series.clone()))
            .unwrap();
        let b = batcher(&model, BatchConfig::default());
        let out = b.classify(series, true).unwrap();
        assert_eq!(out.predictions, direct);
        let proba = out.probabilities.unwrap();
        assert_eq!(proba.len(), 6);
        for p in proba {
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn concurrent_submissions_coalesce_and_match() {
        let model = tiny_model();
        let config = BatchConfig {
            max_batch: 64,
            max_wait: Duration::from_millis(30),
            queue_depth: 256,
        };
        let b = batcher(&model, config);
        let series = test_series(12);
        let direct = model
            .predict(&Dataset::from_series("q", series.clone()))
            .unwrap();
        let results: Vec<(usize, ClassifyOutput)> = std::thread::scope(|scope| {
            series
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let b = &b;
                    let s = s.clone();
                    scope.spawn(move || (i, b.classify(vec![s], false).unwrap()))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let mut coalesced = false;
        for (i, out) in results {
            assert_eq!(out.predictions, vec![direct[i]], "series {i}");
            if out.batch_size > 1 {
                coalesced = true;
            }
        }
        // 12 concurrent single-series requests with a 30 ms window on a
        // model whose batch takes ~ms: at least some must share a batch
        assert!(coalesced, "no request was ever co-batched");
    }

    #[test]
    fn saturation_returns_queue_full() {
        let model = tiny_model();
        let config = BatchConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            queue_depth: 2,
        };
        let metrics = Arc::new(ServerMetrics::default());
        let b = Batcher::new(
            Arc::clone(&model),
            config,
            ThreadPool::new(1),
            Arc::clone(&metrics),
        )
        .expect("spawn batcher");
        // submit from many threads; with depth 2 some must be rejected,
        // while every accepted one completes correctly
        let series = test_series(1);
        let outcomes: Vec<Result<ClassifyOutput, ClassifyError>> = std::thread::scope(|scope| {
            (0..24)
                .map(|_| {
                    let b = &b;
                    let s = series[0].clone();
                    scope.spawn(move || b.classify(vec![s], false))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let ok = outcomes.iter().filter(|r| r.is_ok()).count();
        assert!(ok >= 1, "at least one request must be served");
        for outcome in outcomes {
            if let Err(e) = outcome {
                assert_eq!(e, ClassifyError::Saturated);
            }
        }
        assert_eq!(
            metrics.classify_rejected_total.get() as usize,
            24 - ok,
            "every non-ok outcome must be a counted rejection"
        );
    }

    #[test]
    fn oversized_request_still_dispatches() {
        let model = tiny_model();
        let config = BatchConfig {
            max_batch: 2,
            max_wait: Duration::from_millis(1),
            queue_depth: 4,
        };
        let b = batcher(&model, config);
        let series = test_series(7); // bigger than both max_batch and depth
        let direct = model
            .predict(&Dataset::from_series("q", series.clone()))
            .unwrap();
        let out = b.classify(series, false).unwrap();
        assert_eq!(out.predictions, direct);
        assert_eq!(out.batch_size, 7);
    }

    #[test]
    fn empty_request_short_circuits() {
        let model = tiny_model();
        let b = batcher(&model, BatchConfig::default());
        let out = b.classify(Vec::new(), true).unwrap();
        assert!(out.predictions.is_empty());
        assert_eq!(out.probabilities, Some(Vec::new()));
        assert_eq!(out.batch_size, 0);
    }

    #[test]
    fn shutdown_rejects_new_work() {
        let model = tiny_model();
        let mut b = batcher(&model, BatchConfig::default());
        b.shutdown();
        let err = b.classify(test_series(1), false).unwrap_err();
        assert_eq!(err, ClassifyError::ShuttingDown);
    }
}
