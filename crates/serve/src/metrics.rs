//! Server observability: request counters, a latency histogram and the
//! realized micro-batch-size distribution, rendered in the Prometheus text
//! exposition format at `/metrics`.
//!
//! Everything is lock-free (`AtomicU64`) so the hot classify path never
//! serialises on a metrics mutex. Histogram sums are accumulated in
//! micro-units (`value * 1e6` rounded) to stay in integer atomics.

use std::sync::atomic::{AtomicU64, Ordering};
use tsg_trace::{FinishedTrace, Stage};

/// A fixed-bucket cumulative histogram.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One counter per bound plus the `+Inf` bucket.
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum_micros: AtomicU64,
}

impl Histogram {
    /// Creates a histogram with the given ascending upper bounds.
    pub fn new(bounds: &[f64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let bucket = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        let micros = (value * 1e6).round().max(0.0) as u64;
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum_micros.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Renders the histogram in Prometheus text format (cumulative buckets).
    fn render(&self, name: &str, out: &mut String) {
        out.push_str(&format!("# TYPE {name} histogram\n"));
        self.render_series(name, "", out);
    }

    /// Renders the bucket/sum/count lines of one series, with an optional
    /// extra label (e.g. `stage="parse"`) and no `# TYPE` header — so one
    /// metric family can hold several labeled histograms.
    ///
    /// Every bucket counter is loaded exactly once into a snapshot before
    /// anything is formatted, and `_count` is the snapshot's own `+Inf`
    /// cumulative value. Under concurrent `observe` calls the rendered
    /// series is therefore always internally consistent: `_count` equals
    /// the `+Inf` bucket by construction, never a torn read of counters
    /// that moved mid-render. (`_sum` is a separate atomic and may run a
    /// hair ahead of or behind the snapshot — Prometheus semantics allow
    /// that; bucket/count consistency is what scrapers rely on.)
    fn render_series(&self, name: &str, label: &str, out: &mut String) {
        let snapshot: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let sum_micros = self.sum_micros.load(Ordering::Relaxed);
        let sep = if label.is_empty() { "" } else { "," };
        let mut cumulative = 0u64;
        for (bound, count) in self.bounds.iter().zip(&snapshot) {
            cumulative += count;
            out.push_str(&format!(
                "{name}_bucket{{{label}{sep}le=\"{bound}\"}} {cumulative}\n"
            ));
        }
        cumulative += snapshot.get(self.bounds.len()).copied().unwrap_or(0);
        out.push_str(&format!(
            "{name}_bucket{{{label}{sep}le=\"+Inf\"}} {cumulative}\n"
        ));
        let suffix = if label.is_empty() {
            String::new()
        } else {
            format!("{{{label}}}")
        };
        out.push_str(&format!("{name}_sum{suffix} {}\n", sum_micros as f64 / 1e6));
        out.push_str(&format!("{name}_count{suffix} {cumulative}\n"));
    }
}

/// A gauge: a value that can go up and down (e.g. open connections).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Increments by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements by one (saturating at zero).
    pub fn dec(&self) {
        // fetch_update never fails with a total function, but avoid the
        // wrap-around a plain fetch_sub would allow on a mismatched dec
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// All metrics exported by the server.
#[derive(Debug)]
pub struct ServerMetrics {
    /// Total HTTP requests accepted (any route).
    pub requests_total: Counter,
    /// Responses by status class: `[2xx, 4xx, 5xx]`.
    pub responses_2xx: Counter,
    /// 4xx responses.
    pub responses_4xx: Counter,
    /// 5xx responses.
    pub responses_5xx: Counter,
    /// Classify requests that entered the batch queue.
    pub classify_requests_total: Counter,
    /// Individual series classified.
    pub classify_series_total: Counter,
    /// Dispatched micro-batches.
    pub classify_batches_total: Counter,
    /// Classify requests rejected with 429 (queue saturated).
    pub classify_rejected_total: Counter,
    /// Requests shed with a 429 response, whatever the route — the
    /// load-shedding signal the chaos harness and dashboards watch.
    pub requests_shed_total: Counter,
    /// Models fitted since startup.
    pub models_fitted_total: Counter,
    /// Connections accepted since startup.
    pub connections_accepted_total: Counter,
    /// Connections torn down because the socket errored (ECONNRESET, EPIPE,
    /// injected resets) rather than closing cleanly.
    pub connections_reset_total: Counter,
    /// Model snapshots that failed to load (missing, corrupt, stale config)
    /// and fell back to a refit.
    pub snapshot_load_failures_total: Counter,
    /// Currently open connections in the event loop.
    pub connections_open: Gauge,
    /// End-to-end request latency in seconds (all routes).
    pub request_latency_seconds: Histogram,
    /// Classify request latency in seconds (queue wait + batch compute).
    pub classify_latency_seconds: Histogram,
    /// Series per dispatched micro-batch.
    pub batch_size: Histogram,
    /// Per-stage latency attribution, one histogram per [`Stage`] in
    /// [`Stage::ALL`] order, rendered as
    /// `tsg_serve_stage_seconds{stage="..."}` — fed by finished traces.
    pub stage_seconds: [Histogram; Stage::COUNT],
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics {
            requests_total: Counter::default(),
            responses_2xx: Counter::default(),
            responses_4xx: Counter::default(),
            responses_5xx: Counter::default(),
            classify_requests_total: Counter::default(),
            classify_series_total: Counter::default(),
            classify_batches_total: Counter::default(),
            classify_rejected_total: Counter::default(),
            requests_shed_total: Counter::default(),
            models_fitted_total: Counter::default(),
            connections_accepted_total: Counter::default(),
            connections_reset_total: Counter::default(),
            snapshot_load_failures_total: Counter::default(),
            connections_open: Gauge::default(),
            request_latency_seconds: Histogram::new(&[
                0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
                10.0,
            ]),
            classify_latency_seconds: Histogram::new(&[
                0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
                10.0,
            ]),
            batch_size: Histogram::new(&[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0]),
            // stages run well under the end-to-end latency, so the stage
            // buckets start at 25 µs instead of 500 µs
            stage_seconds: std::array::from_fn(|_| {
                Histogram::new(&[
                    0.000025, 0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
                    0.05, 0.1, 0.25, 1.0,
                ])
            }),
        }
    }
}

impl ServerMetrics {
    /// Feeds a finished trace's non-zero stage spans into the per-stage
    /// histograms (zero spans are stages the request never entered — a
    /// `/healthz` has no `predict` — and would only distort the
    /// distributions).
    pub fn observe_stages(&self, trace: &FinishedTrace) {
        for (stage, histogram) in Stage::ALL.iter().zip(&self.stage_seconds) {
            let micros = trace.stage(*stage);
            if micros > 0 {
                histogram.observe(micros as f64 / 1e6);
            }
        }
    }

    /// Records the status class of a finished response. Every 429, whatever
    /// the route, also counts as a shed request.
    pub fn record_status(&self, status: u16) {
        if status == 429 {
            self.requests_shed_total.inc();
        }
        match status {
            200..=299 => self.responses_2xx.inc(),
            400..=499 => self.responses_4xx.inc(),
            _ => self.responses_5xx.inc(),
        }
    }

    /// Renders every metric in Prometheus text format. `faults_injected` is
    /// supplied by the caller (from [`tsg_faults::injected_total`]) so this
    /// module stays free of cross-crate state.
    pub fn render(&self, n_models: usize, uptime_seconds: f64, faults_injected: u64) -> String {
        let mut out = String::new();
        let counters: [(&str, &Counter); 13] = [
            ("tsg_serve_requests_total", &self.requests_total),
            ("tsg_serve_responses_2xx_total", &self.responses_2xx),
            ("tsg_serve_responses_4xx_total", &self.responses_4xx),
            ("tsg_serve_responses_5xx_total", &self.responses_5xx),
            (
                "tsg_serve_classify_requests_total",
                &self.classify_requests_total,
            ),
            (
                "tsg_serve_classify_series_total",
                &self.classify_series_total,
            ),
            (
                "tsg_serve_classify_batches_total",
                &self.classify_batches_total,
            ),
            (
                "tsg_serve_classify_rejected_total",
                &self.classify_rejected_total,
            ),
            ("tsg_serve_requests_shed_total", &self.requests_shed_total),
            ("tsg_serve_models_fitted_total", &self.models_fitted_total),
            (
                "tsg_serve_connections_accepted_total",
                &self.connections_accepted_total,
            ),
            (
                "tsg_serve_connections_reset_total",
                &self.connections_reset_total,
            ),
            (
                "tsg_serve_snapshot_load_failures_total",
                &self.snapshot_load_failures_total,
            ),
        ];
        for (name, counter) in counters {
            out.push_str(&format!(
                "# TYPE {name} counter\n{name} {}\n",
                counter.get()
            ));
        }
        out.push_str(&format!(
            "# TYPE tsg_serve_faults_injected_total counter\ntsg_serve_faults_injected_total {faults_injected}\n"
        ));
        out.push_str(&format!(
            "# TYPE tsg_serve_models gauge\ntsg_serve_models {n_models}\n"
        ));
        out.push_str(&format!(
            "# TYPE tsg_serve_connections_open gauge\ntsg_serve_connections_open {}\n",
            self.connections_open.get()
        ));
        out.push_str(&format!(
            "# TYPE tsg_serve_uptime_seconds gauge\ntsg_serve_uptime_seconds {uptime_seconds}\n"
        ));
        self.request_latency_seconds
            .render("tsg_serve_request_latency_seconds", &mut out);
        self.classify_latency_seconds
            .render("tsg_serve_classify_latency_seconds", &mut out);
        self.batch_size.render("tsg_serve_batch_size", &mut out);
        out.push_str("# TYPE tsg_serve_stage_seconds histogram\n");
        for (stage, histogram) in Stage::ALL.iter().zip(&self.stage_seconds) {
            histogram.render_series(
                "tsg_serve_stage_seconds",
                &format!("stage=\"{}\"", stage.as_str()),
                &mut out,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.5, 3.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 106.0).abs() < 1e-6);
        let mut out = String::new();
        h.render("x", &mut out);
        assert!(out.contains("x_bucket{le=\"1\"} 2\n"), "{out}");
        assert!(out.contains("x_bucket{le=\"2\"} 3\n"), "{out}");
        assert!(out.contains("x_bucket{le=\"4\"} 4\n"), "{out}");
        assert!(out.contains("x_bucket{le=\"+Inf\"} 5\n"), "{out}");
        assert!(out.contains("x_count 5\n"), "{out}");
    }

    #[test]
    fn counters_and_status_classes() {
        let m = ServerMetrics::default();
        m.requests_total.add(3);
        m.record_status(200);
        m.record_status(404);
        m.record_status(429);
        m.record_status(503);
        assert_eq!(m.responses_2xx.get(), 1);
        assert_eq!(m.responses_4xx.get(), 2);
        assert_eq!(m.responses_5xx.get(), 1);
        assert_eq!(m.requests_shed_total.get(), 1, "the 429 must count as shed");
        let text = m.render(2, 1.5, 7);
        assert!(text.contains("tsg_serve_requests_total 3\n"));
        assert!(text.contains("tsg_serve_models 2\n"));
        assert!(text.contains("tsg_serve_batch_size_count 0\n"));
        assert!(text.contains("tsg_serve_connections_open 0\n"));
        assert!(text.contains("tsg_serve_requests_shed_total 1\n"));
        assert!(text.contains("tsg_serve_connections_reset_total 0\n"));
        assert!(text.contains("tsg_serve_snapshot_load_failures_total 0\n"));
        assert!(text.contains("tsg_serve_faults_injected_total 7\n"));
    }

    #[test]
    fn gauge_tracks_open_connections() {
        let g = Gauge::default();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.dec();
        g.dec(); // saturates instead of wrapping
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn rendered_count_always_equals_the_inf_bucket_under_concurrency() {
        // the torn-read regression: _count used to come from a separate
        // atomic loaded after the buckets, so a concurrent observe could
        // make _count != the +Inf cumulative bucket in one render
        let h = std::sync::Arc::new(Histogram::new(&[0.5, 2.0]));
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let stop = &stop;
            for _ in 0..3 {
                let h = std::sync::Arc::clone(&h);
                scope.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        h.observe(0.1);
                        h.observe(1.0);
                        h.observe(9.0);
                    }
                });
            }
            for _ in 0..200 {
                let mut out = String::new();
                h.render("x", &mut out);
                let value = |marker: &str| -> u64 {
                    out.lines()
                        .find_map(|l| l.strip_prefix(marker))
                        .and_then(|rest| rest.trim().parse().ok())
                        .expect("rendered line present")
                };
                assert_eq!(
                    value("x_bucket{le=\"+Inf\"}"),
                    value("x_count"),
                    "torn render:\n{out}"
                );
            }
            stop.store(true, Ordering::Relaxed);
        });
    }

    #[test]
    fn stage_histograms_render_labeled_series() {
        let m = ServerMetrics::default();
        let mut trace = tsg_trace::ActiveTrace::begin("/x", 0).finish(0);
        trace.stage_micros = [0; Stage::COUNT];
        trace.stage_micros[Stage::Parse.index()] = 30; // 30 µs
        trace.stage_micros[Stage::Predict.index()] = 2_000; // 2 ms
        m.observe_stages(&trace);
        let text = m.render(0, 0.0, 0);
        assert!(text.contains("# TYPE tsg_serve_stage_seconds histogram\n"));
        // one TYPE line for the whole family, not one per stage
        assert_eq!(text.matches("TYPE tsg_serve_stage_seconds").count(), 1);
        assert!(
            text.contains("tsg_serve_stage_seconds_bucket{stage=\"parse\",le=\"0.00005\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("tsg_serve_stage_seconds_count{stage=\"parse\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("tsg_serve_stage_seconds_count{stage=\"predict\"} 1\n"),
            "{text}"
        );
        // untouched stages render with zero observations
        assert!(
            text.contains("tsg_serve_stage_seconds_count{stage=\"write_out\"} 0\n"),
            "{text}"
        );
        assert!(
            text.contains("tsg_serve_stage_seconds_sum{stage=\"predict\"} 0.002\n"),
            "{text}"
        );
    }

    #[test]
    fn concurrent_observations_are_not_lost() {
        let h = std::sync::Arc::new(Histogram::new(&[0.5]));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let h = std::sync::Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..1000 {
                        h.observe(if i % 2 == 0 { 0.1 } else { 0.9 });
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
    }
}
