//! # tsg-serve — the batching classification server
//!
//! The paper's pitch is *efficient* classification: fit once, then classify
//! cheaply at scale. This crate exposes the fitted pipeline as a service —
//! the repo's serving layer on the road to the production north star. It is
//! built entirely on `std` (the environment has no crates.io access): a
//! raw-syscall epoll shim ([`epoll`]), hand-rolled HTTP/1.1 ([`http`]), a
//! minimal JSON reader/writer ([`json`]), and plain threads + condvars for
//! the scheduler.
//!
//! Six layers:
//!
//! * [`epoll`] — the thin FFI shim over Linux `epoll`/`eventfd`: readiness
//!   notification and a cross-thread waker, with every `unsafe` site
//!   SAFETY-commented;
//! * [`event_loop`] — the single-threaded serving core: a slab of
//!   nonblocking per-connection state machines with incremental parsing,
//!   HTTP/1.1 pipelining (responses always in request order), and a
//!   completion queue that lets worker threads finish requests without the
//!   loop ever blocking;
//! * [`registry`] — named, fitted [`MvgClassifier`](tsg_core::MvgClassifier)
//!   instances behind `Arc`s with monotonically increasing versions (classify
//!   requests can pin one), fitted from the [`tsg_datasets`] catalogue
//!   (through its on-disk cache) or from series supplied in the request;
//! * [`batcher`] — ONE shared micro-batch scheduler for all models:
//!   concurrent classify requests coalesce into per-model batches (tunable
//!   max size / max wait), each batch extracts features on the shared
//!   [`tsg_parallel::ThreadPool`] with warm
//!   [`MotifWorkspace`](tsg_graph::motifs::MotifWorkspace) reuse, and a
//!   bounded queue applies backpressure (HTTP 429) when saturated;
//! * [`metrics`] — request/connection counters, latency histograms and the
//!   realized batch-size distribution at `/metrics`;
//! * [`server`] — routing and the public bind/preload/run API, used by the
//!   `tsg-serve` binary; the `serve_loadgen` binary drives N concurrent
//!   connections against it and reports throughput and latency percentiles;
//! * `snapshot` (internal) — crash-safe, hash-verified on-disk snapshots of
//!   fitted models, written after every successful fit when `--snapshot-dir`
//!   is set and reloaded on boot by
//!   [`ModelRegistry::warm_restart`](registry::ModelRegistry::warm_restart);
//!   a corrupt snapshot is detected and refitted, never served.
//!
//! The serving and storage I/O paths are threaded through the deterministic
//! fault-injection seams of [`tsg_faults`] (compiled to no-ops unless the
//! `fault-injection` feature — or any test build — enables them); see
//! `docs/fault-injection.md` and `tests/chaos.rs`.
//!
//! Batching is *bit-neutral*: a series classified in a batch of 64 gets
//! exactly the prediction a direct
//! [`MvgClassifier::predict`](tsg_core::MvgClassifier::predict) call
//! produces (`tests/e2e.rs` proves this over concurrent connections).

pub mod batcher;
pub mod epoll;
mod event_loop;
pub mod http;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod server;
mod snapshot;

pub use batcher::{BatchConfig, ClassifyError, ClassifyOutput, SharedBatcher};
pub use json::Json;
pub use metrics::ServerMetrics;
pub use registry::{config_named, ModelInfo, ModelRegistry, TrainingSource, CONFIG_PRESETS};
pub use server::{ServeConfig, Server, ShutdownHandle};
