//! # tsg-serve — the batching classification server
//!
//! The paper's pitch is *efficient* classification: fit once, then classify
//! cheaply at scale. This crate exposes the fitted pipeline as a service —
//! the repo's first serving layer on the road to the production north star.
//! It is built entirely on `std` (the environment has no crates.io access):
//! hand-rolled HTTP/1.1 over `std::net::TcpListener` ([`http`]), a minimal
//! JSON reader/writer ([`json`]), and plain threads + condvars for the
//! scheduler.
//!
//! Four layers:
//!
//! * [`registry`] — named, fitted [`MvgClassifier`](tsg_core::MvgClassifier)
//!   instances behind `Arc`s, fitted from the [`tsg_datasets`] catalogue
//!   (through its on-disk cache) or from series supplied in the request;
//! * [`batcher`] — a micro-batch scheduler per model: concurrent classify
//!   requests coalesce into batches (tunable max size / max wait), each
//!   batch extracts features on the shared [`tsg_parallel::ThreadPool`] with
//!   per-worker [`MotifWorkspace`](tsg_graph::motifs::MotifWorkspace) reuse,
//!   and a bounded queue applies backpressure (HTTP 429) when saturated;
//! * [`metrics`] — request counters, latency histograms and the realized
//!   batch-size distribution at `/metrics`;
//! * [`server`] — routing, keep-alive connection handling and graceful
//!   shutdown, used by the `tsg-serve` binary; the `serve_loadgen` binary
//!   drives N concurrent connections against it and reports throughput and
//!   latency percentiles.
//!
//! Batching is *bit-neutral*: a series classified in a batch of 64 gets
//! exactly the prediction a direct
//! [`MvgClassifier::predict`](tsg_core::MvgClassifier::predict) call
//! produces (`tests/e2e.rs` proves this over concurrent connections).

pub mod batcher;
pub mod http;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod server;

pub use batcher::{BatchConfig, Batcher, ClassifyError, ClassifyOutput};
pub use json::Json;
pub use metrics::ServerMetrics;
pub use registry::{config_named, ModelInfo, ModelRegistry, TrainingSource, CONFIG_PRESETS};
pub use server::{ServeConfig, Server, ShutdownHandle};
