//! A minimal HTTP/1.1 implementation over `std::net`.
//!
//! The build environment has no crates.io access, so the server hand-rolls
//! the small slice of HTTP it needs: request-line + header parsing,
//! `Content-Length` bodies, keep-alive, and response writing. A matching
//! client half ([`send_request`] / [`read_response`]) is used by the
//! load-generator binary and the end-to-end tests, so both sides of the wire
//! live next to each other.

use crate::json::Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Upper bound on an accepted request body (covers inline training sets for
/// generously sized datasets while bounding memory per connection).
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// Upper bound on the header section of a request.
const MAX_HEADER_BYTES: usize = 64 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Request path (query string stripped).
    pub path: String,
    /// Lowercased header names with their values.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// Looks up a header by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked for the connection to stay open after this
    /// request (HTTP/1.1 default unless `Connection: close`).
    pub fn keep_alive(&self) -> bool {
        !matches!(self.header("connection"), Some(v) if v.eq_ignore_ascii_case("close"))
    }

    /// Parses the body as JSON.
    pub fn json_body(&self) -> Result<Json, String> {
        let text = std::str::from_utf8(&self.body).map_err(|_| "body is not UTF-8".to_string())?;
        Json::parse(text).map_err(|e| e.to_string())
    }
}

/// Outcome of one attempt to read a request from a keep-alive connection.
#[derive(Debug)]
pub enum RequestOutcome {
    /// A complete request was read.
    Request(Request),
    /// The peer closed the connection before sending another request.
    Closed,
    /// The read timed out before the first byte of a request arrived; the
    /// connection is still healthy (the caller typically checks its shutdown
    /// flag and retries).
    Idle,
}

/// Per-request budget for slow senders. Socket read timeouts are short (the
/// server uses them to poll its shutdown flag on idle connections), so a
/// request that has *started* tolerates individual timeouts and only fails
/// once this much wall time has passed since its first byte — a stalling WAN
/// upload is not cut off after one short timeout.
const MID_REQUEST_BUDGET: Duration = Duration::from_secs(30);

/// Tracks whether a request has started and how long it may still take.
struct TimeoutBudget {
    deadline: Option<Instant>,
}

impl TimeoutBudget {
    fn new() -> TimeoutBudget {
        TimeoutBudget { deadline: None }
    }

    /// Marks the request as started (first byte seen).
    fn start(&mut self) {
        if self.deadline.is_none() {
            self.deadline = Some(Instant::now() + MID_REQUEST_BUDGET);
        }
    }

    /// Whether a timeout error should be retried rather than propagated.
    fn tolerates_timeout(&self) -> bool {
        matches!(self.deadline, Some(d) if Instant::now() < d)
    }
}

/// Reads one request. `Idle` is only reported when the timeout fires before
/// any byte of the request was seen; once a request has started, timeouts
/// are retried until [`MID_REQUEST_BUDGET`] is exhausted, after which they
/// are errors (the connection is no longer aligned to message boundaries).
pub fn read_request(reader: &mut BufReader<TcpStream>) -> std::io::Result<RequestOutcome> {
    let mut budget = TimeoutBudget::new();
    let mut line = Vec::new();
    match read_crlf_line(reader, &mut line, MAX_HEADER_BYTES, &mut budget) {
        Ok(0) => return Ok(RequestOutcome::Closed),
        Ok(_) => {}
        Err(e) if is_timeout(&e) && line.is_empty() => return Ok(RequestOutcome::Idle),
        Err(e) => return Err(e),
    }
    let request_line = String::from_utf8(line)
        .map_err(|_| bad_request("request line is not UTF-8"))?
        .trim_end()
        .to_string();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad_request("empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| bad_request("missing request target"))?;
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Err(bad_request("unsupported HTTP version"));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut headers = Vec::new();
    let mut header_bytes = 0usize;
    loop {
        let mut line = Vec::new();
        let n = read_crlf_line(reader, &mut line, MAX_HEADER_BYTES, &mut budget)?;
        if n == 0 {
            return Err(bad_request("connection closed inside headers"));
        }
        header_bytes += n;
        if header_bytes > MAX_HEADER_BYTES {
            return Err(bad_request("header section too large"));
        }
        let text = String::from_utf8(line).map_err(|_| bad_request("header is not UTF-8"))?;
        let text = text.trim_end();
        if text.is_empty() {
            break;
        }
        if let Some((name, value)) = text.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>())
        .transpose()
        .map_err(|_| bad_request("invalid Content-Length"))?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(bad_request("body too large"));
    }
    let mut body = vec![0u8; content_length];
    read_exact_budgeted(reader, &mut body, &mut budget)?;
    Ok(RequestOutcome::Request(Request {
        method,
        path,
        headers,
        body,
    }))
}

/// Reads bytes up to and including `\n` (headers are CRLF-delimited, but a
/// bare `\n` is tolerated). Returns the number of bytes read; `0` means EOF.
fn read_crlf_line(
    reader: &mut BufReader<TcpStream>,
    line: &mut Vec<u8>,
    max: usize,
    budget: &mut TimeoutBudget,
) -> std::io::Result<usize> {
    let mut total = 0usize;
    loop {
        let mut byte = 0u8;
        match reader.read(std::slice::from_mut(&mut byte)) {
            Ok(0) => return Ok(total),
            Ok(_) => {
                budget.start();
                total += 1;
                if total > max {
                    return Err(bad_request("line too long"));
                }
                if byte == b'\n' {
                    return Ok(total);
                }
                line.push(byte);
            }
            Err(e) if is_timeout(&e) && budget.tolerates_timeout() => {}
            Err(e) => return Err(e),
        }
    }
}

/// `read_exact` that retries socket timeouts within the request's budget.
fn read_exact_budgeted(
    reader: &mut BufReader<TcpStream>,
    buf: &mut [u8],
    budget: &mut TimeoutBudget,
) -> std::io::Result<()> {
    let mut filled = 0usize;
    while filled < buf.len() {
        // tsg-allow(panic-freedom): `filled < buf.len()` is the loop guard, so the range start is in bounds
        match reader.read(&mut buf[filled..]) {
            Ok(0) => return Err(bad_request("connection closed inside body")),
            Ok(n) => {
                budget.start();
                filled += n;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) && budget.tolerates_timeout() => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn bad_request(message: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message.to_string())
}

/// Whether an I/O error is a read timeout (platform-dependent kind).
pub fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// An HTTP response ready to be written to a stream.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, value: &Json) -> Response {
        let mut body = value.write().into_bytes();
        body.push(b'\n');
        Response {
            status,
            content_type: "application/json",
            body,
        }
    }

    /// A JSON error response with a standard `{"error": ...}` shape.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(
            status,
            &Json::obj(vec![("error", Json::Str(message.to_string()))]),
        )
    }

    /// A plain-text response (used by `/metrics`).
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
        }
    }

    /// Writes the response; `keep_alive` selects the `Connection` header.
    pub fn write_to(&self, stream: &mut TcpStream, keep_alive: bool) -> std::io::Result<()> {
        let connection = if keep_alive { "keep-alive" } else { "close" };
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            self.status,
            reason_phrase(self.status),
            self.content_type,
            self.body.len(),
            connection,
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Reason phrases for the status codes the server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Client half: writes a request (JSON body optional) on an open stream.
pub fn send_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: Option<&Json>,
) -> std::io::Result<()> {
    let body_bytes = body.map(|b| b.write().into_bytes()).unwrap_or_default();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: tsg-serve\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        body_bytes.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&body_bytes)?;
    stream.flush()
}

/// Client half: reads one response, returning `(status, body)`.
pub fn read_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<(u16, Vec<u8>)> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad_request("malformed status line"))?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad_request("connection closed inside response headers"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad_request("invalid Content-Length"))?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((status, body))
}

/// Client convenience: one request/response round-trip with a JSON reply.
pub fn roundtrip_json(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    method: &str,
    path: &str,
    body: Option<&Json>,
) -> std::io::Result<(u16, Json)> {
    send_request(stream, method, path, body)?;
    let (status, bytes) = read_response(reader)?;
    let text = String::from_utf8(bytes).map_err(|_| bad_request("response body is not UTF-8"))?;
    let json = Json::parse(text.trim())
        .map_err(|e| bad_request(&format!("response body is not JSON: {e}")))?;
    Ok((status, json))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Drives `read_request` over a real socket pair.
    fn parse_raw(raw: &[u8]) -> std::io::Result<RequestOutcome> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(&raw).unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream);
        let outcome = read_request(&mut reader);
        writer.join().unwrap();
        outcome
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /models/m/classify HTTP/1.1\r\nHost: x\r\nContent-Length: 15\r\n\r\n{\"series\": [[]]}";
        // note: Content-Length intentionally one short of the full body to
        // check exact-length reads; 15 bytes of the 16-byte body
        match parse_raw(raw).unwrap() {
            RequestOutcome::Request(r) => {
                assert_eq!(r.method, "POST");
                assert_eq!(r.path, "/models/m/classify");
                assert_eq!(r.body.len(), 15);
                assert!(r.keep_alive());
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn query_string_is_stripped_and_close_honoured() {
        let raw = b"GET /metrics?verbose=1 HTTP/1.1\r\nConnection: close\r\n\r\n";
        match parse_raw(raw).unwrap() {
            RequestOutcome::Request(r) => {
                assert_eq!(r.path, "/metrics");
                assert!(!r.keep_alive());
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn slow_sender_within_budget_is_not_cut_off() {
        // the socket read timeout is much shorter than the sender's stall;
        // the per-request budget must carry the read across it
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .write_all(b"POST /x HTTP/1.1\r\nContent-Length: 4\r\n\r\nab")
                .unwrap();
            std::thread::sleep(Duration::from_millis(150));
            stream.write_all(b"cd").unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(20)))
            .unwrap();
        let mut reader = BufReader::new(stream);
        match read_request(&mut reader).unwrap() {
            RequestOutcome::Request(r) => assert_eq!(r.body, b"abcd"),
            other => panic!("unexpected outcome {other:?}"),
        }
        writer.join().unwrap();
    }

    #[test]
    fn eof_before_request_is_closed() {
        assert!(matches!(parse_raw(b"").unwrap(), RequestOutcome::Closed));
    }

    #[test]
    fn rejects_bad_version_and_bad_length() {
        assert!(parse_raw(b"GET / SPDY/3\r\n\r\n").is_err());
        assert!(parse_raw(b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n").is_err());
    }

    #[test]
    fn response_roundtrips_through_client_reader() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let outcome = read_request(&mut reader).unwrap();
            let RequestOutcome::Request(request) = outcome else {
                panic!("expected request");
            };
            assert_eq!(
                request.json_body().unwrap().get("x").unwrap().as_f64(),
                Some(2.0)
            );
            Response::json(200, &Json::obj(vec![("ok", Json::Bool(true))]))
                .write_to(&mut stream, request.keep_alive())
                .unwrap();
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let (status, json) = roundtrip_json(
            &mut stream,
            &mut reader,
            "POST",
            "/echo",
            Some(&Json::obj(vec![("x", Json::Num(2.0))])),
        )
        .unwrap();
        assert_eq!(status, 200);
        assert_eq!(json.get("ok").unwrap().as_bool(), Some(true));
        server.join().unwrap();
    }

    #[test]
    fn reason_phrases_cover_served_codes() {
        for code in [200, 400, 404, 405, 408, 413, 429, 500, 501, 503] {
            assert_ne!(reason_phrase(code), "Unknown");
        }
        assert_eq!(reason_phrase(418), "Unknown");
    }
}
