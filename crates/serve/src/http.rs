//! A minimal HTTP/1.x implementation over `std::net`.
//!
//! The build environment has no crates.io access, so the server hand-rolls
//! the small slice of HTTP it needs. The core is [`RequestParser`], an
//! *incremental* parser: the event loop feeds it whatever bytes a
//! nonblocking read produced and asks for complete requests, so one buffer
//! per connection supports keep-alive and HTTP/1.1 pipelining without any
//! blocking reads. A matching client half ([`send_request`] /
//! [`read_response`]) is used by the load-generator binary and the
//! end-to-end tests, so both sides of the wire live next to each other.
//!
//! Wire-protocol decisions worth calling out (each carries a regression
//! test):
//!
//! * the request's HTTP version is *kept* on [`Request`]: HTTP/1.0 defaults
//!   to `Connection: close`, HTTP/1.1 to keep-alive;
//! * a body over [`MAX_BODY_BYTES`] surfaces as [`ParseError::TooLarge`] so
//!   the server can answer `413 Payload Too Large` instead of a generic 400;
//! * conflicting duplicate `Content-Length` headers are rejected outright —
//!   resolving them by first-match is a request-smuggling foothold once
//!   responses can be pipelined.

use crate::json::Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Upper bound on an accepted request body (covers inline training sets for
/// generously sized datasets while bounding memory per connection).
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// Upper bound on the header section of a request.
const MAX_HEADER_BYTES: usize = 64 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Request path (query string stripped).
    pub path: String,
    /// Raw query string (the part after `?`, empty when absent). Routing
    /// matches on `path`; handlers that take parameters read them here via
    /// [`Request::query_param`].
    pub query: String,
    /// Lowercased header names with their values.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Minor version of the `HTTP/1.x` request line (`0` or `1`). Decides
    /// the keep-alive default, so it must not be discarded at parse time.
    pub version_minor: u8,
}

impl Request {
    /// Looks up a header by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked for the connection to stay open after this
    /// request. An explicit `Connection` header wins; without one the
    /// protocol default applies — keep-alive for HTTP/1.1, close for
    /// HTTP/1.0 (which predates persistent-by-default connections).
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.version_minor >= 1,
        }
    }

    /// Looks up a query-string parameter by name (`?a=1&b=2` style; no
    /// percent-decoding — the debug endpoints that use this take only
    /// numeric and hex values). A bare key (`?verbose`) yields `Some("")`.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .split('&')
            .map(|pair| pair.split_once('=').unwrap_or((pair, "")))
            .find(|(key, _)| *key == name)
            .map(|(_, value)| value)
    }

    /// Parses the body as JSON.
    pub fn json_body(&self) -> Result<Json, String> {
        let text = std::str::from_utf8(&self.body).map_err(|_| "body is not UTF-8".to_string())?;
        Json::parse(text).map_err(|e| e.to_string())
    }
}

/// Why a byte stream failed to parse as a request. The variant decides the
/// wire status: the server must not collapse everything into 400.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The bytes are not a well-formed request (maps to `400 Bad Request`).
    Malformed(String),
    /// The request is well-formed but its declared body exceeds
    /// [`MAX_BODY_BYTES`] (maps to `413 Payload Too Large`).
    TooLarge(String),
}

impl ParseError {
    /// The HTTP status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::Malformed(_) => 400,
            ParseError::TooLarge(_) => 413,
        }
    }

    /// The human-readable reason.
    pub fn message(&self) -> &str {
        match self {
            ParseError::Malformed(m) | ParseError::TooLarge(m) => m,
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message())
    }
}

/// Incremental request parser: push bytes in as they arrive, pull complete
/// requests out. Feeding it a request split across arbitrarily small chunks
/// and feeding it several pipelined requests in one chunk both work — the
/// buffer is only consumed when a complete request (head + declared body)
/// is available.
///
/// After an `Err` the stream is no longer aligned to message boundaries and
/// the connection must be closed once the error response is flushed.
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
}

impl RequestParser {
    /// An empty parser.
    pub fn new() -> RequestParser {
        RequestParser::default()
    }

    /// Appends freshly read bytes to the parse buffer.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Whether any unconsumed bytes are buffered (true between the first
    /// byte of a request and its completion — the "mid-request" state a
    /// timeout sweep cares about).
    pub fn has_buffered_bytes(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Number of unconsumed buffered bytes.
    pub fn buffered_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Tries to parse one complete request off the front of the buffer.
    /// `Ok(None)` means more bytes are needed.
    pub fn next_request(&mut self) -> Result<Option<Request>, ParseError> {
        let Some(head_len) = find_head_end(&self.buf) else {
            // no blank line yet: bound how much head we are willing to buffer
            if self.buf.len() > MAX_HEADER_BYTES {
                return Err(ParseError::Malformed("header section too large".into()));
            }
            return Ok(None);
        };
        if head_len > MAX_HEADER_BYTES {
            return Err(ParseError::Malformed("header section too large".into()));
        }
        let head = self.buf.get(..head_len).unwrap_or_default();
        let (method, path, query, version_minor, headers) = parse_head(head)?;
        let content_length = content_length(&headers)?;
        if content_length > MAX_BODY_BYTES {
            return Err(ParseError::TooLarge(format!(
                "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
            )));
        }
        let total = head_len + content_length;
        if self.buf.len() < total {
            return Ok(None); // body still in flight
        }
        let body = self.buf.get(head_len..total).unwrap_or_default().to_vec();
        self.buf.drain(..total);
        Ok(Some(Request {
            method,
            path,
            query,
            headers,
            body,
            version_minor,
        }))
    }
}

/// Index one past the blank line terminating the header section, if
/// complete. CRLF line endings are canonical but a bare `\n` is tolerated,
/// matching the historical byte-wise reader.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut line_start = 0usize;
    for (i, &byte) in buf.iter().enumerate() {
        if byte != b'\n' {
            continue;
        }
        let line_is_blank =
            i == line_start || (i == line_start + 1 && buf.get(line_start) == Some(&b'\r'));
        if line_is_blank && line_start > 0 {
            return Some(i + 1);
        }
        line_start = i + 1;
    }
    None
}

/// Parses the request line and headers out of a complete head.
#[allow(clippy::type_complexity)]
fn parse_head(
    head: &[u8],
) -> Result<(String, String, String, u8, Vec<(String, String)>), ParseError> {
    let text = std::str::from_utf8(head)
        .map_err(|_| ParseError::Malformed("request head is not UTF-8".into()))?;
    let mut lines = text.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ParseError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| ParseError::Malformed("missing request target".into()))?;
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed("unsupported HTTP version".into()));
    }
    let version_minor = if version == "HTTP/1.0" { 0 } else { 1 };
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path.to_string(), query.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    Ok((method, path, query, version_minor, headers))
}

/// Resolves `Content-Length` across *all* its occurrences. Disagreeing
/// duplicates are rejected: picking one by position lets a front proxy and
/// this server frame the stream differently, which is exactly the request-
/// smuggling setup pipelining makes exploitable. Identical duplicates are
/// tolerated per RFC 7230 §3.3.2.
fn content_length(headers: &[(String, String)]) -> Result<usize, ParseError> {
    let mut resolved: Option<usize> = None;
    for (name, value) in headers {
        if name != "content-length" {
            continue;
        }
        let parsed = value
            .parse::<usize>()
            .map_err(|_| ParseError::Malformed("invalid Content-Length".into()))?;
        match resolved {
            Some(previous) if previous != parsed => {
                return Err(ParseError::Malformed(
                    "conflicting duplicate Content-Length headers".into(),
                ));
            }
            _ => resolved = Some(parsed),
        }
    }
    Ok(resolved.unwrap_or(0))
}

/// Outcome of one attempt to read a request from a keep-alive connection.
#[derive(Debug)]
pub enum RequestOutcome {
    /// A complete request was read.
    Request(Request),
    /// The peer closed the connection before sending another request.
    Closed,
    /// The read timed out before the first byte of a request arrived; the
    /// connection is still healthy (the caller typically checks its shutdown
    /// flag and retries).
    Idle,
}

/// Per-request budget for slow senders. Socket read timeouts are short, so
/// a request that has *started* tolerates individual timeouts and only
/// fails once this much wall time has passed since its first byte — a
/// stalling WAN upload is not cut off after one short timeout. The event
/// loop enforces the same budget through its timeout sweep.
pub const MID_REQUEST_BUDGET: Duration = Duration::from_secs(30);

/// Tracks whether a request has started and how long it may still take.
struct TimeoutBudget {
    deadline: Option<Instant>,
}

impl TimeoutBudget {
    fn new() -> TimeoutBudget {
        TimeoutBudget { deadline: None }
    }

    /// Marks the request as started (first byte seen).
    fn start(&mut self) {
        if self.deadline.is_none() {
            self.deadline = Some(Instant::now() + MID_REQUEST_BUDGET);
        }
    }

    /// Whether a timeout error should be retried rather than propagated.
    fn tolerates_timeout(&self) -> bool {
        matches!(self.deadline, Some(d) if Instant::now() < d)
    }
}

/// Blocking convenience over [`RequestParser`] for tests and simple tools:
/// reads one request off a blocking socket. `Idle` is only reported when
/// the timeout fires before any byte of the request was seen; once a
/// request has started, timeouts are retried until [`MID_REQUEST_BUDGET`]
/// is exhausted. The event-loop server drives [`RequestParser`] directly —
/// this wrapper parses one request per fresh parser, so pipelined bytes
/// beyond the first request are not preserved across calls.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> std::io::Result<RequestOutcome> {
    let mut parser = RequestParser::new();
    let mut budget = TimeoutBudget::new();
    loop {
        match parser.next_request() {
            Ok(Some(request)) => return Ok(RequestOutcome::Request(request)),
            Ok(None) => {}
            Err(e) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    e.to_string(),
                ))
            }
        }
        // injectable read seam (same site as the event loop's socket fill)
        if let Some(fault) = tsg_faults::net_fault(tsg_faults::Site::ConnRead) {
            match fault {
                tsg_faults::NetFault::Interrupt | tsg_faults::NetFault::Short => continue,
                tsg_faults::NetFault::WouldBlock => {
                    if !parser.has_buffered_bytes() {
                        return Ok(RequestOutcome::Idle);
                    }
                    if budget.tolerates_timeout() {
                        continue;
                    }
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "injected timeout (tsg_faults)",
                    ));
                }
                tsg_faults::NetFault::Reset | tsg_faults::NetFault::Err => {
                    if let Some(e) = fault.to_error() {
                        return Err(e);
                    }
                }
            }
        }
        let n = match reader.fill_buf() {
            Ok([]) => {
                return if parser.has_buffered_bytes() {
                    Err(bad_request("connection closed mid-request"))
                } else {
                    Ok(RequestOutcome::Closed)
                };
            }
            Ok(chunk) => {
                budget.start();
                parser.push(chunk);
                chunk.len()
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => {
                if !parser.has_buffered_bytes() {
                    return Ok(RequestOutcome::Idle);
                }
                if budget.tolerates_timeout() {
                    continue;
                }
                return Err(e);
            }
            Err(e) => return Err(e),
        };
        reader.consume(n);
    }
}

fn bad_request(message: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message.to_string())
}

/// Whether an I/O error is a read timeout (platform-dependent kind).
pub fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// An HTTP response ready to be written to a stream.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, value: &Json) -> Response {
        let mut body = value.write().into_bytes();
        body.push(b'\n');
        Response {
            status,
            content_type: "application/json",
            body,
        }
    }

    /// A JSON error response with a standard `{"error": ...}` shape.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(
            status,
            &Json::obj(vec![("error", Json::Str(message.to_string()))]),
        )
    }

    /// A plain-text response (used by `/metrics`).
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
        }
    }

    /// Serializes the response; `keep_alive` selects the `Connection`
    /// header. The event loop appends this to a connection's write buffer.
    pub fn serialize(&self, keep_alive: bool) -> Vec<u8> {
        let connection = if keep_alive { "keep-alive" } else { "close" };
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            self.status,
            reason_phrase(self.status),
            self.content_type,
            self.body.len(),
            connection,
        );
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }

    /// Writes the response on a blocking stream (client/test convenience).
    pub fn write_to(&self, stream: &mut TcpStream, keep_alive: bool) -> std::io::Result<()> {
        stream.write_all(&self.serialize(keep_alive))?;
        stream.flush()
    }
}

/// Reason phrases for the status codes the server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Client half: writes a request (JSON body optional) on an open stream.
pub fn send_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: Option<&Json>,
) -> std::io::Result<()> {
    let body_bytes = body.map(|b| b.write().into_bytes()).unwrap_or_default();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: tsg-serve\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        body_bytes.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&body_bytes)?;
    stream.flush()
}

/// Client half: reads one response, returning `(status, body)`.
pub fn read_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<(u16, Vec<u8>)> {
    let (status, _headers, body) = read_response_with_headers(reader)?;
    Ok((status, body))
}

/// A decoded response: status, lowercased `(name, value)` headers, body.
pub type FullResponse = (u16, Vec<(String, String)>, Vec<u8>);

/// Client half: reads one response including its headers — the regression
/// tests inspect the `Connection` header, which [`read_response`] discards.
pub fn read_response_with_headers(
    reader: &mut BufReader<TcpStream>,
) -> std::io::Result<FullResponse> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad_request("malformed status line"))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad_request("connection closed inside response headers"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value
                    .parse()
                    .map_err(|_| bad_request("invalid Content-Length"))?;
            }
            headers.push((name, value));
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((status, headers, body))
}

/// Client convenience: one request/response round-trip with a JSON reply.
pub fn roundtrip_json(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    method: &str,
    path: &str,
    body: Option<&Json>,
) -> std::io::Result<(u16, Json)> {
    send_request(stream, method, path, body)?;
    let (status, bytes) = read_response(reader)?;
    let text = String::from_utf8(bytes).map_err(|_| bad_request("response body is not UTF-8"))?;
    let json = Json::parse(text.trim())
        .map_err(|e| bad_request(&format!("response body is not JSON: {e}")))?;
    Ok((status, json))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Parses a raw byte stream through the incremental parser in one shot.
    fn parse_bytes(raw: &[u8]) -> Result<Option<Request>, ParseError> {
        let mut parser = RequestParser::new();
        parser.push(raw);
        parser.next_request()
    }

    /// Drives `read_request` over a real socket pair.
    fn parse_raw(raw: &[u8]) -> std::io::Result<RequestOutcome> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(&raw).unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream);
        let outcome = read_request(&mut reader);
        writer.join().unwrap();
        outcome
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /models/m/classify HTTP/1.1\r\nHost: x\r\nContent-Length: 15\r\n\r\n{\"series\": [[]]}";
        // note: Content-Length intentionally one short of the full body to
        // check exact-length reads; 15 bytes of the 16-byte body
        match parse_raw(raw).unwrap() {
            RequestOutcome::Request(r) => {
                assert_eq!(r.method, "POST");
                assert_eq!(r.path, "/models/m/classify");
                assert_eq!(r.body.len(), 15);
                assert!(r.keep_alive());
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn query_string_is_stripped_and_close_honoured() {
        let raw = b"GET /metrics?verbose=1 HTTP/1.1\r\nConnection: close\r\n\r\n";
        match parse_raw(raw).unwrap() {
            RequestOutcome::Request(r) => {
                assert_eq!(r.path, "/metrics");
                assert_eq!(r.query, "verbose=1");
                assert!(!r.keep_alive());
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn query_params_resolve_by_name() {
        let r = parse_bytes(b"GET /debug/traces?slow_ms=5&trace_id=a3&bare HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(r.path, "/debug/traces");
        assert_eq!(r.query_param("slow_ms"), Some("5"));
        assert_eq!(r.query_param("trace_id"), Some("a3"));
        assert_eq!(r.query_param("bare"), Some(""));
        assert_eq!(r.query_param("missing"), None);

        let none = parse_bytes(b"GET /debug/traces HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(none.query, "");
        assert_eq!(none.query_param("slow_ms"), None);
    }

    #[test]
    fn http10_defaults_to_close() {
        // regression: the version used to be parsed and discarded, so an
        // HTTP/1.0 client was promised keep-alive semantics it never asked
        // for and could wait forever on a connection the server held open
        let r = parse_bytes(b"GET /healthz HTTP/1.0\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(r.version_minor, 0);
        assert!(!r.keep_alive(), "HTTP/1.0 must default to close");

        // an explicit Connection: keep-alive still opts in
        let r = parse_bytes(b"GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(r.keep_alive(), "explicit keep-alive must be honoured");

        // and HTTP/1.1 keeps its persistent default
        let r = parse_bytes(b"GET /healthz HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(r.version_minor, 1);
        assert!(r.keep_alive());
    }

    #[test]
    fn conflicting_duplicate_content_length_is_rejected() {
        // regression: first-match resolution would frame the body as 4
        // bytes while a proxy picking the last header frames it as 16 —
        // the classic request-smuggling disagreement
        let raw =
            b"POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 16\r\n\r\nabcdabcdabcdabcd";
        match parse_bytes(raw) {
            Err(ParseError::Malformed(m)) => assert!(m.contains("Content-Length"), "{m}"),
            other => panic!("conflicting lengths accepted: {other:?}"),
        }
        // identical duplicates are tolerated (RFC 7230 §3.3.2)
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nabcd";
        let r = parse_bytes(raw).unwrap().unwrap();
        assert_eq!(r.body, b"abcd");
    }

    #[test]
    fn oversized_body_is_too_large_not_malformed() {
        // regression: the 413 reason phrase existed but no code path could
        // reach it — the parser folded "too big" into the generic 400
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        match parse_bytes(raw.as_bytes()) {
            Err(e @ ParseError::TooLarge(_)) => assert_eq!(e.status(), 413),
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // at the limit exactly the request head still parses fine (the body
        // just hasn't arrived yet)
        let raw = format!("POST /x HTTP/1.1\r\nContent-Length: {MAX_BODY_BYTES}\r\n\r\n");
        assert!(matches!(parse_bytes(raw.as_bytes()), Ok(None)));
    }

    #[test]
    fn pipelined_requests_parse_in_order() {
        let mut parser = RequestParser::new();
        parser.push(b"POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nabcGET /b HTTP/1.1\r\n\r\nGET /c HTTP/1.1\r\n\r\n");
        let a = parser.next_request().unwrap().unwrap();
        assert_eq!(
            (a.path.as_str(), a.body.as_slice()),
            ("/a", b"abc".as_slice())
        );
        let b = parser.next_request().unwrap().unwrap();
        assert_eq!(b.path, "/b");
        let c = parser.next_request().unwrap().unwrap();
        assert_eq!(c.path, "/c");
        assert!(parser.next_request().unwrap().is_none());
        assert!(!parser.has_buffered_bytes());
    }

    #[test]
    fn byte_at_a_time_feeding_parses_identically() {
        let raw = b"POST /models/m/classify HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let mut parser = RequestParser::new();
        for (i, byte) in raw.iter().enumerate() {
            parser.push(std::slice::from_ref(byte));
            let parsed = parser.next_request().unwrap();
            if i + 1 < raw.len() {
                assert!(parsed.is_none(), "completed early at byte {i}");
            } else {
                let r = parsed.expect("complete at the last byte");
                assert_eq!(r.body, b"hello");
            }
        }
    }

    #[test]
    fn slow_sender_within_budget_is_not_cut_off() {
        // the socket read timeout is much shorter than the sender's stall;
        // the per-request budget must carry the read across it
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .write_all(b"POST /x HTTP/1.1\r\nContent-Length: 4\r\n\r\nab")
                .unwrap();
            std::thread::sleep(Duration::from_millis(150));
            stream.write_all(b"cd").unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(20)))
            .unwrap();
        let mut reader = BufReader::new(stream);
        match read_request(&mut reader).unwrap() {
            RequestOutcome::Request(r) => assert_eq!(r.body, b"abcd"),
            other => panic!("unexpected outcome {other:?}"),
        }
        writer.join().unwrap();
    }

    #[test]
    fn eof_before_request_is_closed() {
        assert!(matches!(parse_raw(b"").unwrap(), RequestOutcome::Closed));
    }

    #[test]
    fn rejects_bad_version_and_bad_length() {
        assert!(parse_raw(b"GET / SPDY/3\r\n\r\n").is_err());
        assert!(parse_raw(b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n").is_err());
    }

    #[test]
    fn response_roundtrips_through_client_reader() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let outcome = read_request(&mut reader).unwrap();
            let RequestOutcome::Request(request) = outcome else {
                panic!("expected request");
            };
            assert_eq!(
                request.json_body().unwrap().get("x").unwrap().as_f64(),
                Some(2.0)
            );
            Response::json(200, &Json::obj(vec![("ok", Json::Bool(true))]))
                .write_to(&mut stream, request.keep_alive())
                .unwrap();
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let (status, json) = roundtrip_json(
            &mut stream,
            &mut reader,
            "POST",
            "/echo",
            Some(&Json::obj(vec![("x", Json::Num(2.0))])),
        )
        .unwrap();
        assert_eq!(status, 200);
        assert_eq!(json.get("ok").unwrap().as_bool(), Some(true));
        server.join().unwrap();
    }

    #[test]
    fn reason_phrases_cover_served_codes() {
        for code in [200, 400, 404, 405, 408, 409, 413, 429, 500, 501, 503] {
            assert_ne!(reason_phrase(code), "Unknown");
        }
        assert_eq!(reason_phrase(418), "Unknown");
    }
}
