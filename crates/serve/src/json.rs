//! A minimal JSON reader/writer.
//!
//! The build environment has no crates.io access and the vendored `serde` is
//! a no-op stub, so the wire format is handled by this hand-rolled module: a
//! [`Json`] value tree, a recursive-descent parser and a compact writer.
//! Object member order is preserved (members are stored as a `Vec`), which
//! keeps emitted documents stable and diffable.
//!
//! Numbers are stored as `f64` and written with Rust's shortest round-trip
//! formatting, so a value that travels client → server → client parses back
//! to the identical bits — the property the serving determinism test relies
//! on. Non-finite numbers (JSON has no `NaN`/`Infinity`) are written as
//! `null`.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order is preserved.
    Obj(Vec<(String, Json)>),
}

/// Parse error: byte offset plus a short message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Nesting depth guard: deeper documents are rejected rather than risking a
/// stack overflow on hostile input.
const MAX_DEPTH: usize = 64;

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Builds an array of numbers.
    pub fn nums<I: IntoIterator<Item = f64>>(values: I) -> Json {
        Json::Arr(values.into_iter().map(Json::Num).collect())
    }

    /// Builds an array of strings.
    pub fn strs<'a, I: IntoIterator<Item = &'a str>>(values: I) -> Json {
        Json::Arr(
            values
                .into_iter()
                .map(|s| Json::Str(s.to_string()))
                .collect(),
        )
    }

    /// Looks up an object member by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a whole number `f64` can represent
    /// exactly (up to 2^53 — a JSON number is a double, so larger integers
    /// cannot travel faithfully anyway).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document (exactly one value plus trailing whitespace).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Writes the value as compact JSON.
    pub fn write(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_string(key, out);
                    out.push_str(": ");
                    value.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.write())
    }
}

fn write_number(n: f64, out: &mut String) {
    if n.is_finite() {
        out.push_str(&format!("{n}"));
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    /// The unconsumed input (empty at end of input, never panics).
    fn rest(&self) -> &[u8] {
        self.bytes.get(self.pos..).unwrap_or(&[])
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.rest().starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{text}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(format!("unexpected character `{}`", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate
                            let c = if (0xd800..0xdc00).contains(&code) {
                                if self.rest().starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&low) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    let combined =
                                        0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                    char::from_u32(combined)
                                } else {
                                    return Err(self.error("unpaired high surrogate"));
                                }
                            } else {
                                char::from_u32(code)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid unicode escape")),
                            }
                            // hex4 leaves pos past the digits; skip the
                            // shared `pos += 1` below
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    if b < 0x20 {
                        return Err(self.error("unescaped control character in string"));
                    }
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // multi-byte UTF-8: the width comes from the leading
                    // byte, so only the one character is re-validated (the
                    // input is a `&str`, so this cannot fail in practice)
                    let width = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return Err(self.error("invalid UTF-8")),
                    };
                    let slice = self
                        .bytes
                        .get(self.pos..self.pos + width)
                        .ok_or_else(|| self.error("truncated UTF-8 character"))?;
                    let c = std::str::from_utf8(slice)
                        .map_err(|_| self.error("invalid UTF-8"))?
                        .chars()
                        .next()
                        .ok_or_else(|| self.error("invalid UTF-8"))?;
                    out.push(c);
                    self.pos += width;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.error("truncated unicode escape"))?;
        let text = std::str::from_utf8(digits).map_err(|_| self.error("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(text, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = self
            .bytes
            .get(start..self.pos)
            .and_then(|digits| std::str::from_utf8(digits).ok())
            .ok_or_else(|| self.error("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compound_value() {
        let doc = Json::obj(vec![
            ("name", Json::Str("m1".into())),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("values", Json::nums([1.0, -2.5, 0.125])),
            (
                "nested",
                Json::obj(vec![("labels", Json::strs(["a", "b"]))]),
            ),
        ]);
        let text = doc.write();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn writer_formats_match_hand_written_style() {
        let doc = Json::obj(vec![
            ("methods", Json::strs(["a", "b"])),
            ("cd", Json::Num(1.5)),
        ]);
        assert_eq!(doc.write(), "{\"methods\": [\"a\", \"b\"], \"cd\": 1.5}");
    }

    #[test]
    fn numbers_roundtrip_bit_exactly() {
        for value in [
            0.0,
            -0.0,
            1.0,
            std::f64::consts::PI,
            1e-300,
            -2.2250738585072014e-308,
            123456789.12345679,
        ] {
            let text = Json::Num(value).write();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), value.to_bits(), "value {value}");
        }
    }

    #[test]
    fn non_finite_numbers_write_as_null() {
        assert_eq!(Json::Num(f64::NAN).write(), "null");
        assert_eq!(Json::Num(f64::INFINITY).write(), "null");
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#""a\"b\\c\nd\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c\ndAé");
        let pair = Json::parse(r#""\ud83e\udd80""#).unwrap();
        assert_eq!(pair.as_str().unwrap(), "🦀");
    }

    #[test]
    fn raw_multibyte_utf8_in_strings() {
        let v = Json::parse("\"héllo 🦀 ∑\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "héllo 🦀 ∑");
    }

    #[test]
    fn string_escaping_roundtrips() {
        let original = "line1\nline2\t\"quoted\" \\slash \u{0001}";
        let text = Json::Str(original.to_string()).write();
        assert_eq!(Json::parse(&text).unwrap().as_str().unwrap(), original);
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"n": 3, "s": "x", "b": false, "a": [1, 2]}"#).unwrap();
        assert_eq!(doc.get("n").unwrap().as_usize(), Some(3));
        assert_eq!(doc.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 2);
        assert!(doc.get("missing").is_none());
        assert_eq!(Json::Num(3.5).as_usize(), None);
        assert_eq!(Json::Num(-1.0).as_usize(), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1, ]",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\": 1,}",
            "\"\\q\"",
            "\"\\ud800x\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_unbounded_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" \n\t{ \"a\" : [ 1 , 2 ] } \r\n").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
    }
}
