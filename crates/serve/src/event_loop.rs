//! The readiness-based serving core: one thread, one [`Epoll`] instance,
//! every connection nonblocking.
//!
//! ## Shape
//!
//! The loop owns a slab of per-connection state machines. Each connection
//! keeps an incremental [`RequestParser`] fed by nonblocking reads, a write
//! buffer drained by nonblocking writes, and a sequence-numbered reorder
//! stage so HTTP/1.1 **pipelining** works: a client may send N back-to-back
//! requests on one connection and always receives the N responses in
//! request order, even when they complete out of order (classify requests
//! finish on the batch dispatcher, fits on the ops worker, while `/healthz`
//! answers inline).
//!
//! Slow work never blocks the loop:
//!
//! * classify requests are submitted to the registry's [`SharedBatcher`]
//!   with a completion callback;
//! * fit requests run on a dedicated ops worker thread (spawned by
//!   `server::run` — this module spawns no threads);
//! * both push their finished bytes into the [`Completions`] queue and nudge
//!   the parked loop through an `eventfd` [`Waker`].
//!
//! Completions carry the `(token, generation)` of the connection they belong
//! to; the slab bumps a slot's generation on every close, so a completion
//! for a connection that died (and whose slot was reused) is recognised as
//! stale and dropped instead of being written to the wrong client.
//!
//! Keep-alive is decided **after** routing: `POST /shutdown` flips the
//! shutdown flag during routing, and the response's `Connection` header
//! reflects it — the old thread-per-connection server computed keep-alive
//! first and promised `keep-alive` on the very response after which it hung
//! up. Parse failures answer with their mapped status (400 malformed, 413
//! oversized) and close once flushed, because the byte stream is no longer
//! aligned to message boundaries.
//!
//! Graceful shutdown: stop accepting, stop reading, let in-flight work
//! complete and flush, then close — bounded by a grace deadline so a stuck
//! peer cannot hold the process open.

use crate::epoll::{
    Epoll, EpollEvent, Interest, Waker, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
};
use crate::http::{RequestParser, Response};
use crate::server::{route_request, Routed, ServerState};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};
use tsg_faults::{net_fault, NetFault, Site};
use tsg_trace::{ActiveTrace, Stage, TraceHandle};

/// A deferred unit of blocking work (model fits) executed on the ops worker.
pub(crate) type OpsJob = Box<dyn FnOnce() + Send>;

/// Token of the listening socket in the epoll set.
const TOKEN_LISTENER: u64 = 0;
/// Token of the completion-queue waker.
const TOKEN_WAKER: u64 = 1;
/// First token handed to connections (slot index + this offset).
const TOKEN_BASE: u64 = 2;

/// Maximum pipelined requests in flight per connection. Past this the loop
/// stops reading the connection (TCP backpressure) until responses drain,
/// bounding per-connection memory.
const MAX_PIPELINE: u64 = 32;

/// How long the loop parks in `epoll_wait` at most; bounds the latency of
/// the shutdown-flag check and the mid-request timeout sweep.
const TICK: i32 = 100;

/// Grace period for draining in-flight work and flushing responses on
/// shutdown.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(5);

/// Backoff after an unexpected `accept` failure (e.g. fd exhaustion): the
/// pending connection keeps the listener readable, so without a pause a
/// level-triggered loop would spin on the error.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(25);

fn lock_recover<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// A finished asynchronous response, addressed to one request of one
/// connection incarnation.
pub(crate) struct Completed {
    /// Epoll token of the connection (slot + [`TOKEN_BASE`]).
    pub(crate) token: u64,
    /// Slot generation at submission time; a mismatch means the connection
    /// died and the slot was reused — the completion is dropped.
    pub(crate) generation: u64,
    /// Position in the connection's response order.
    pub(crate) seq: u64,
    /// Fully serialized response bytes.
    pub(crate) bytes: Vec<u8>,
    /// The request's trace, finalized once the bytes hit the socket (or the
    /// connection dies). `None` for untraced wire errors.
    pub(crate) trace: Option<TraceHandle>,
}

/// The queue worker threads complete into, plus the waker that makes the
/// parked loop notice.
pub(crate) struct Completions {
    queue: Mutex<Vec<Completed>>,
    waker: Waker,
}

impl Completions {
    fn new() -> io::Result<Arc<Completions>> {
        Ok(Arc::new(Completions {
            queue: Mutex::new(Vec::new()),
            waker: Waker::new()?,
        }))
    }

    /// Called from worker threads: enqueue a finished response and wake the
    /// loop.
    pub(crate) fn push(&self, completed: Completed) {
        lock_recover(&self.queue).push(completed);
        let _ = self.waker.wake();
    }

    /// Called from the loop: take everything queued so far. The waker is
    /// drained first so a wake arriving after the swap stays pending and
    /// re-triggers the next `epoll_wait`.
    fn drain(&self) -> Vec<Completed> {
        self.waker.drain();
        std::mem::take(&mut *lock_recover(&self.queue))
    }
}

/// The context a routed request needs to complete asynchronously.
pub(crate) struct AsyncCtx {
    /// Where to push the finished response.
    pub(crate) completions: Arc<Completions>,
    /// Connection address for the completion.
    pub(crate) token: u64,
    /// Connection incarnation for staleness detection.
    pub(crate) generation: u64,
    /// Response-order position of this request.
    pub(crate) seq: u64,
    /// Keep-alive decision for serializing the response.
    pub(crate) keep_alive: bool,
    /// When the request was parsed (for the latency histograms).
    pub(crate) started: Instant,
    /// The request's trace; async handlers record their spans onto it and
    /// hand it back through [`Completed`].
    pub(crate) trace: TraceHandle,
}

/// Per-connection state machine.
struct Connection {
    stream: TcpStream,
    parser: RequestParser,
    /// Serialized responses being written, in order.
    write_buf: Vec<u8>,
    /// How much of `write_buf` has been written already.
    write_pos: usize,
    /// Responses that completed out of order, waiting for their turn.
    reorder: Vec<(u64, Vec<u8>, Option<TraceHandle>)>,
    /// Cumulative bytes ever appended to `write_buf` (never reset, unlike
    /// the buffer itself).
    enqueued_total: u64,
    /// Cumulative bytes ever written to the socket.
    written_total: u64,
    /// Traces of enqueued responses, in enqueue order, waiting for their
    /// bytes to reach the socket so the write-out span can close.
    pending_traces: VecDeque<PendingTrace>,
    /// Sequence number the next parsed request will get.
    next_seq: u64,
    /// Sequence number the next appended response must have.
    next_flush_seq: u64,
    /// No further requests will be parsed (close requested, parse error,
    /// peer EOF, or server drain). Once also fully flushed, the connection
    /// closes.
    stop_reading: bool,
    /// The peer will send no more bytes (EOF or half-close observed).
    read_closed: bool,
    /// The socket errored; close without attempting further I/O.
    broken: bool,
    /// When the first byte of a still-incomplete request arrived; drives the
    /// 408 sweep against [`MID_REQUEST_BUDGET`].
    request_started: Option<Instant>,
    /// Interest currently registered in the epoll set.
    interest: Interest,
}

/// A trace waiting for its response bytes to be fully written.
struct PendingTrace {
    /// The `enqueued_total` watermark at which this response's last byte has
    /// entered the write buffer; once `written_total` catches up, the bytes
    /// are on the socket.
    watermark: u64,
    trace: TraceHandle,
    /// When the response entered the write buffer — the start of the
    /// write-out span.
    enqueued_at: Instant,
}

impl Connection {
    fn new(stream: TcpStream) -> Connection {
        Connection {
            stream,
            parser: RequestParser::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            reorder: Vec::new(),
            enqueued_total: 0,
            written_total: 0,
            pending_traces: VecDeque::new(),
            next_seq: 0,
            next_flush_seq: 0,
            stop_reading: false,
            read_closed: false,
            broken: false,
            request_started: None,
            interest: Interest::READ,
        }
    }

    /// Requests routed but whose response has not yet entered the write
    /// buffer.
    fn in_flight(&self) -> u64 {
        self.next_seq - self.next_flush_seq
    }

    /// Whether the loop currently wants bytes from this peer.
    fn wants_read(&self) -> bool {
        !self.stop_reading && !self.read_closed && self.in_flight() < MAX_PIPELINE
    }

    /// Whether everything is done and the connection should close.
    fn finished(&self) -> bool {
        self.stop_reading && self.in_flight() == 0 && self.write_pos == self.write_buf.len()
    }

    /// Appends a response in sequence order, parking it in the reorder stage
    /// if earlier responses are still outstanding.
    fn enqueue_response(&mut self, seq: u64, bytes: Vec<u8>, trace: Option<TraceHandle>) {
        if seq != self.next_flush_seq {
            self.reorder.push((seq, bytes, trace));
            return;
        }
        self.append_outgoing(bytes, trace);
        // release any directly following responses that were parked
        while let Some(pos) = self
            .reorder
            .iter()
            .position(|(s, _, _)| *s == self.next_flush_seq)
        {
            let (_, ready, ready_trace) = self.reorder.swap_remove(pos);
            self.append_outgoing(ready, ready_trace);
        }
    }

    /// Moves one in-order response into the write buffer, opening its
    /// write-out span.
    fn append_outgoing(&mut self, bytes: Vec<u8>, trace: Option<TraceHandle>) {
        self.write_buf.extend_from_slice(&bytes);
        self.enqueued_total += bytes.len() as u64;
        self.next_flush_seq += 1;
        if let Some(trace) = trace {
            self.pending_traces.push_back(PendingTrace {
                watermark: self.enqueued_total,
                trace,
                enqueued_at: Instant::now(),
            });
        }
    }

    /// Writes as much of the buffer as the socket accepts right now.
    fn flush(&mut self) {
        while self.write_pos < self.write_buf.len() {
            let mut remaining = self.write_buf.get(self.write_pos..).unwrap_or_default();
            match net_fault(Site::ConnWrite) {
                Some(NetFault::Interrupt) => continue,
                Some(NetFault::WouldBlock) => return,
                Some(NetFault::Reset) | Some(NetFault::Err) => {
                    self.broken = true;
                    return;
                }
                Some(NetFault::Short) => {
                    remaining = remaining.get(..1).unwrap_or(remaining);
                }
                None => {}
            }
            match self.stream.write(remaining) {
                Ok(0) => {
                    self.broken = true;
                    return;
                }
                Ok(n) => {
                    self.write_pos += n;
                    self.written_total += n as u64;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => {
                    self.broken = true;
                    return;
                }
            }
        }
        // fully flushed: reclaim the buffer instead of growing forever
        self.write_buf.clear();
        self.write_pos = 0;
    }

    /// Reads until the socket would block (or EOF / error), feeding the
    /// parser. Respects `wants_read` so a capped pipeline applies TCP
    /// backpressure instead of buffering without bound.
    fn fill_from_socket(&mut self) {
        let mut chunk = [0u8; 16 * 1024];
        while self.wants_read() {
            let mut cap = chunk.len();
            match net_fault(Site::ConnRead) {
                Some(NetFault::Interrupt) => continue,
                Some(NetFault::WouldBlock) => return,
                Some(NetFault::Reset) | Some(NetFault::Err) => {
                    self.broken = true;
                    return;
                }
                Some(NetFault::Short) => cap = 1,
                None => {}
            }
            let buf = match chunk.get_mut(..cap) {
                Some(b) => b,
                None => &mut chunk,
            };
            match self.stream.read(buf) {
                Ok(0) => {
                    self.read_closed = true;
                    return;
                }
                Ok(n) => {
                    self.parser.push(chunk.get(..n).unwrap_or_default());
                    if self.request_started.is_none() {
                        self.request_started = Some(Instant::now());
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => {
                    self.broken = true;
                    return;
                }
            }
        }
    }
}

/// One slab slot. The generation survives the connection so late
/// completions addressed to a dead incarnation can be recognised.
#[derive(Default)]
struct Slot {
    generation: u64,
    conn: Option<Connection>,
}

/// Everything the per-connection handlers need besides the slab itself.
struct LoopCtx<'a> {
    epoll: &'a Epoll,
    state: &'a Arc<ServerState>,
    completions: &'a Arc<Completions>,
    ops: &'a mpsc::Sender<OpsJob>,
    draining: bool,
}

/// Runs the event loop until shutdown completes. `ops` hands blocking work
/// (fits) to the worker thread `server::run` spawned.
pub(crate) fn run(
    listener: TcpListener,
    state: &Arc<ServerState>,
    ops: &mpsc::Sender<OpsJob>,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let epoll = Epoll::new()?;
    let completions = Completions::new()?;
    epoll.add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
    epoll.add(completions.waker.fd(), TOKEN_WAKER, Interest::READ)?;

    let mut slots: Vec<Slot> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut events = vec![EpollEvent::default(); 512];
    let mut draining = false;
    let mut drain_deadline = Instant::now();

    loop {
        let n = epoll.wait(&mut events, TICK)?;
        let mut accept_pending = false;
        for event in events.iter().take(n) {
            // copy out of the (packed on x86_64) event before touching fields
            let token = { event.data };
            let bits = { event.events };
            match token {
                TOKEN_LISTENER => accept_pending = true,
                TOKEN_WAKER => {
                    // drained (with the queue) below; nothing to do here
                }
                token => {
                    let Some(slot) =
                        slots.get_mut(usize::try_from(token - TOKEN_BASE).unwrap_or(usize::MAX))
                    else {
                        continue;
                    };
                    let Some(conn) = slot.conn.as_mut() else {
                        continue; // closed earlier in this same batch
                    };
                    if bits & EPOLLERR != 0 {
                        conn.broken = true;
                        continue;
                    }
                    if bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0 {
                        conn.fill_from_socket();
                        if bits & EPOLLHUP != 0 && !conn.read_closed {
                            // full hangup: both directions are gone
                            conn.broken = true;
                        }
                    }
                    // EPOLLOUT needs no action here: the maintenance pass
                    // below flushes every connection with buffered output
                    let _ = bits & EPOLLOUT;
                }
            }
        }

        if accept_pending && !draining {
            accept_connections(&listener, &epoll, state, &mut slots, &mut free);
        }

        // apply async completions (classify batches, finished fits)
        for completed in completions.drain() {
            let Some(slot) = slots.get_mut(
                usize::try_from(completed.token.saturating_sub(TOKEN_BASE)).unwrap_or(usize::MAX),
            ) else {
                if let Some(trace) = completed.trace {
                    finalize_trace(state, &trace);
                }
                continue;
            };
            if slot.generation != completed.generation {
                // the connection this belonged to is gone; the flight
                // recorder still keeps the trace (without a write-out span)
                if let Some(trace) = completed.trace {
                    finalize_trace(state, &trace);
                }
                continue;
            }
            if let Some(conn) = slot.conn.as_mut() {
                conn.enqueue_response(completed.seq, completed.bytes, completed.trace);
            }
        }

        // enter drain mode once the shutdown flag is observed
        if !draining && state.shutdown.load(Ordering::Acquire) {
            draining = true;
            drain_deadline = Instant::now() + SHUTDOWN_GRACE;
            let _ = epoll.delete(listener.as_raw_fd());
        }

        // maintenance pass: parse + route buffered requests, sweep timeouts,
        // flush, close or re-arm every live connection
        let ctx = LoopCtx {
            epoll: &epoll,
            state,
            completions: &completions,
            ops,
            draining,
        };
        let mut open = 0usize;
        let mut freed: Vec<usize> = Vec::new();
        for idx in 0..slots.len() {
            let Some(slot) = slots.get_mut(idx) else {
                continue;
            };
            let Some(conn) = slot.conn.as_mut() else {
                continue;
            };
            let token = idx as u64 + TOKEN_BASE;
            if ctx.draining {
                conn.stop_reading = true;
            }
            if !conn.broken {
                drain_requests(&ctx, conn, token, slot.generation);
                sweep_timeout(ctx.state, conn);
                conn.flush();
                finish_written_traces(ctx.state, conn);
            }
            if conn.broken || conn.finished() {
                close_connection(&ctx, slot);
                freed.push(idx);
                continue;
            }
            open += 1;
            let desired = Interest {
                readable: conn.wants_read(),
                writable: conn.write_pos < conn.write_buf.len(),
            };
            if desired != conn.interest {
                if ctx
                    .epoll
                    .modify(conn.stream.as_raw_fd(), token, desired)
                    .is_err()
                {
                    conn.broken = true;
                    close_connection(&ctx, slot);
                    freed.push(idx);
                    open -= 1;
                    continue;
                }
                conn.interest = desired;
            }
        }
        // slots freed this iteration become reusable from the next one, so a
        // stale event later in the same batch can never hit a fresh tenant
        free.append(&mut freed);

        if draining && (open == 0 || Instant::now() >= drain_deadline) {
            for slot in &mut slots {
                if slot.conn.is_some() {
                    let ctx = LoopCtx {
                        epoll: &epoll,
                        state,
                        completions: &completions,
                        ops,
                        draining,
                    };
                    close_connection(&ctx, slot);
                }
            }
            return Ok(());
        }
    }
}

/// Accepts until the listener would block.
fn accept_connections(
    listener: &TcpListener,
    epoll: &Epoll,
    state: &Arc<ServerState>,
    slots: &mut Vec<Slot>,
    free: &mut Vec<usize>,
) {
    loop {
        match net_fault(Site::Accept) {
            Some(NetFault::Interrupt) => continue,
            Some(_) => {
                // injected accept failure: exercise the same backoff path a
                // real EMFILE burst takes
                std::thread::sleep(ACCEPT_BACKOFF);
                return;
            }
            None => {}
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue; // drop: an accidental blocking socket would stall the loop
                }
                let _ = stream.set_nodelay(true);
                let idx = match free.pop() {
                    Some(idx) => idx,
                    None => {
                        slots.push(Slot::default());
                        slots.len() - 1
                    }
                };
                let token = idx as u64 + TOKEN_BASE;
                if epoll
                    .add(stream.as_raw_fd(), token, Interest::READ)
                    .is_err()
                {
                    // registration failed: return the slot, drop the stream
                    free.push(idx);
                    continue;
                }
                if let Some(slot) = slots.get_mut(idx) {
                    slot.generation += 1;
                    slot.conn = Some(Connection::new(stream));
                }
                state.metrics.connections_accepted_total.inc();
                state.metrics.connections_open.inc();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => {
                // transient failures (EMFILE bursts, ECONNABORTED races) must
                // not kill the server; the pause keeps the level-triggered
                // loop from spinning on a still-pending connection
                tsg_trace::log::warn(
                    "server",
                    "accept failed (retrying)",
                    None,
                    &[("error", &e.to_string())],
                );
                std::thread::sleep(ACCEPT_BACKOFF);
                return;
            }
        }
    }
}

/// Parses and routes every complete request buffered on the connection,
/// stopping at the pipeline cap or when a request demands the connection
/// close afterwards.
fn drain_requests(ctx: &LoopCtx<'_>, conn: &mut Connection, token: u64, generation: u64) {
    while !conn.stop_reading && conn.in_flight() < MAX_PIPELINE {
        let parse_started = Instant::now();
        match conn.parser.next_request() {
            Ok(Some(request)) => {
                ctx.state.metrics.requests_total.inc();
                let started = Instant::now();
                // the trace is born at parse start, so its total covers the
                // whole pipeline from first decode to last socket write
                let trace = ActiveTrace::begin_at(
                    &request.path,
                    tsg_faults::injected_total(),
                    parse_started,
                );
                trace.record(Stage::Parse, parse_started.elapsed());
                let seq = conn.next_seq;
                conn.next_seq += 1;
                let client_keep_alive = request.keep_alive();
                let async_ctx = AsyncCtx {
                    completions: Arc::clone(ctx.completions),
                    token,
                    generation,
                    seq,
                    keep_alive: client_keep_alive,
                    started,
                    trace: Arc::clone(&trace),
                };
                match route_request(ctx.state, &request, async_ctx, ctx.ops) {
                    Routed::Immediate(response) => {
                        // keep-alive is decided AFTER routing: /shutdown just
                        // flipped the flag, and a 501 (unsupported framing)
                        // or 408 leaves the stream unsynchronized — all of
                        // them must honestly announce the close
                        let keep_alive = client_keep_alive
                            && !ctx.state.shutdown.load(Ordering::Acquire)
                            && !matches!(response.status, 408 | 501);
                        if !keep_alive {
                            conn.stop_reading = true;
                        }
                        ctx.state.metrics.record_status(response.status);
                        ctx.state
                            .metrics
                            .request_latency_seconds
                            .observe(started.elapsed().as_secs_f64());
                        trace.set_status(response.status);
                        let bytes = {
                            let _span = trace.span(Stage::Serialize);
                            response.serialize(keep_alive)
                        };
                        conn.enqueue_response(seq, bytes, Some(trace));
                    }
                    Routed::Async => {
                        // async routes never flip the shutdown flag, so the
                        // client's own preference is the routing-time answer
                        if !client_keep_alive {
                            conn.stop_reading = true;
                        }
                    }
                }
            }
            Ok(None) => break,
            Err(parse_error) => {
                // the stream is no longer aligned to message boundaries:
                // answer with the mapped status (400 malformed / 413 too
                // large) and close once flushed; no trace — there is no
                // request to attribute one to
                let seq = conn.next_seq;
                conn.next_seq += 1;
                let response = Response::error(parse_error.status(), parse_error.message());
                ctx.state.metrics.record_status(response.status);
                conn.stop_reading = true;
                conn.enqueue_response(seq, response.serialize(false), None);
                break;
            }
        }
    }
    if conn.read_closed && !conn.stop_reading && !conn.parser.has_buffered_bytes() {
        // clean EOF between requests: finish what is in flight, then close
        conn.stop_reading = true;
    }
    if conn.read_closed && conn.parser.has_buffered_bytes() {
        // EOF mid-request: no complete request will ever arrive
        conn.stop_reading = true;
    }
    if conn.parser.has_buffered_bytes() {
        if conn.request_started.is_none() {
            conn.request_started = Some(Instant::now());
        }
    } else {
        conn.request_started = None;
    }
}

/// Enforces the server's mid-request budget (`ServeConfig::request_budget`,
/// default [`crate::http::MID_REQUEST_BUDGET`]) on partially received
/// requests: a peer that started a request but stalled gets a 408 and the
/// connection closes.
fn sweep_timeout(state: &Arc<ServerState>, conn: &mut Connection) {
    if conn.stop_reading {
        return;
    }
    let timed_out = matches!(conn.request_started, Some(t) if t.elapsed() >= state.request_budget);
    if !timed_out {
        return;
    }
    let seq = conn.next_seq;
    conn.next_seq += 1;
    let response = Response::error(408, "timed out reading request");
    state.metrics.record_status(response.status);
    conn.stop_reading = true;
    conn.enqueue_response(seq, response.serialize(false), None);
}

/// Closes the write-out span of every response whose bytes have fully
/// reached the socket, and finalizes the trace into the flight recorder.
fn finish_written_traces(state: &Arc<ServerState>, conn: &mut Connection) {
    while conn
        .pending_traces
        .front()
        .is_some_and(|p| p.watermark <= conn.written_total)
    {
        let Some(pending) = conn.pending_traces.pop_front() else {
            break;
        };
        pending
            .trace
            .record(Stage::WriteOut, pending.enqueued_at.elapsed());
        finalize_trace(state, &pending.trace);
    }
}

/// Ends a trace: per-stage histograms first, then the flight recorder.
fn finalize_trace(state: &Arc<ServerState>, trace: &ActiveTrace) {
    let finished = trace.finish(tsg_faults::injected_total());
    state.metrics.observe_stages(&finished);
    state.traces.record(finished);
}

/// Tears a connection down: deregisters the fd, drops the stream, bumps the
/// slot generation (so stale completions are recognised) and updates the
/// gauge. The slot re-enters the free list at the end of the iteration.
fn close_connection(ctx: &LoopCtx<'_>, slot: &mut Slot) {
    if let Some(mut conn) = slot.conn.take() {
        if conn.broken {
            ctx.state.metrics.connections_reset_total.inc();
        }
        // traces whose responses never (fully) reached the peer still land
        // in the flight recorder, just without a write-out span
        for pending in conn.pending_traces.drain(..) {
            finalize_trace(ctx.state, &pending.trace);
        }
        for (_, _, trace) in conn.reorder.drain(..) {
            if let Some(trace) = trace {
                finalize_trace(ctx.state, &trace);
            }
        }
        let _ = ctx.epoll.delete(conn.stream.as_raw_fd());
        slot.generation += 1;
        ctx.state.metrics.connections_open.dec();
    }
}
