//! A thin raw-syscall shim over Linux `epoll` and `eventfd`.
//!
//! The workspace has no crates.io access, so readiness notification is
//! declared directly against the C ABI of libc — which `std` already links —
//! rather than through the `libc` or `mio` crates. The surface is the
//! smallest one the event loop needs: create an epoll instance, register /
//! re-arm / deregister file descriptors with a `u64` token, wait for
//! readiness, and a [`Waker`] (an `eventfd`) that lets worker threads nudge
//! a parked event loop from outside.
//!
//! Every `unsafe` block is a single FFI call with its invariants stated
//! inline; the `tsg-analyze` `unsafe-audit` rule keeps it that way.

use std::ffi::{c_int, c_uint, c_void};
use std::io;
use std::os::fd::RawFd;

// Values from the Linux UAPI headers (x86_64 and aarch64 agree on all of
// them): epoll_ctl ops, epoll event bits, and the eventfd flags.
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

/// The fd is readable.
pub const EPOLLIN: u32 = 0x001;
/// The fd is writable.
pub const EPOLLOUT: u32 = 0x004;
/// An error condition is pending on the fd.
pub const EPOLLERR: u32 = 0x008;
/// The peer hung up.
pub const EPOLLHUP: u32 = 0x010;
/// The peer shut down its write half (half-close); delivered without a read
/// returning 0 first, so the loop can reap half-closed connections early.
pub const EPOLLRDHUP: u32 = 0x2000;

const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// `struct epoll_event`. On x86_64 the kernel declares it packed (12 bytes);
/// other architectures use natural alignment — mirroring that exactly is
/// what keeps `epoll_wait` writing into our buffer sound.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Debug, Clone, Copy, Default)]
pub struct EpollEvent {
    /// Readiness bit set (`EPOLLIN` | `EPOLLOUT` | ...).
    pub events: u32,
    /// The token the fd was registered with.
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

/// Which readiness classes a registration asks for. `EPOLLERR`/`EPOLLHUP`
/// are always delivered by the kernel and need not be requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd becomes readable (or the peer half-closes).
    pub readable: bool,
    /// Wake when the fd becomes writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only — the steady state of an idle keep-alive connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Readable and writable — a connection with a pending write buffer.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn bits(self) -> u32 {
        let mut bits = 0u32;
        if self.readable {
            bits |= EPOLLIN | EPOLLRDHUP;
        }
        if self.writable {
            bits |= EPOLLOUT;
        }
        bits
    }
}

/// An epoll instance (level-triggered, the default and the mode whose
/// readiness contract matches "retry until `WouldBlock`" loops).
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a new epoll instance (close-on-exec).
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 takes no pointers; it either returns a fresh
        // fd we now own or -1 with errno set.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `event` is a live, properly laid out (repr matches the
        // kernel ABI) stack value for the duration of the call; the kernel
        // only reads it. `self.fd` is a valid epoll fd owned by this struct.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut event) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` with the given token and interest.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest.bits(), token)
    }

    /// Re-arms an already registered `fd` with a new interest set.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest.bits(), token)
    }

    /// Deregisters `fd`. (The kernel also drops registrations automatically
    /// when the last fd reference closes; this is the explicit path.)
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks until at least one registered fd is ready or `timeout_ms`
    /// elapses (`-1` = wait forever), filling `events` from the front.
    /// Returns how many entries were written. A signal interruption is
    /// reported as `Ok(0)` — callers loop anyway.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        if events.is_empty() {
            return Ok(0);
        }
        if tsg_faults::net_fault(tsg_faults::Site::EpollWait).is_some() {
            // injected EINTR: surface exactly like a real signal interruption
            return Ok(0);
        }
        let capacity = c_int::try_from(events.len()).unwrap_or(c_int::MAX);
        // SAFETY: `events` is a live, exclusively borrowed slice of
        // ABI-matching EpollEvent values; the kernel writes at most
        // `capacity` entries (bounded by the slice length) and we only trust
        // `n` of them afterwards. `self.fd` is a valid epoll fd.
        let n = unsafe { epoll_wait(self.fd, events.as_mut_ptr(), capacity, timeout_ms) };
        if n < 0 {
            let e = io::Error::last_os_error();
            return if e.kind() == io::ErrorKind::Interrupted {
                Ok(0)
            } else {
                Err(e)
            };
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `self.fd` is a valid epoll fd this struct exclusively
        // owns; after this call nothing reads it again.
        unsafe { close(self.fd) };
    }
}

/// An `eventfd`-backed waker: worker threads call [`Waker::wake`] to make a
/// parked [`Epoll::wait`] return. Register [`Waker::fd`] in the epoll set;
/// after waking, [`Waker::drain`] resets it. Cloneable across threads via
/// `Arc`; `wake` on a full counter (`u64::MAX - 1` pending wakes) would
/// block, which cannot happen at any realistic wake rate.
#[derive(Debug)]
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Creates the eventfd (nonblocking, close-on-exec).
    pub fn new() -> io::Result<Waker> {
        // SAFETY: eventfd takes no pointers; it either returns a fresh fd we
        // now own or -1 with errno set.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Waker { fd })
    }

    /// The fd to register for `EPOLLIN` in the epoll set.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Makes the eventfd readable, waking a parked `epoll_wait`.
    pub fn wake(&self) -> io::Result<()> {
        let one: u64 = 1;
        // SAFETY: writes exactly 8 bytes from a live stack u64 (the size the
        // eventfd ABI requires) to an fd this struct owns.
        let n = unsafe { write(self.fd, (&one as *const u64).cast::<c_void>(), 8) };
        if n < 0 {
            let e = io::Error::last_os_error();
            // a counter already pending a wake is exactly what we wanted
            if e.kind() == io::ErrorKind::WouldBlock {
                return Ok(());
            }
            return Err(e);
        }
        Ok(())
    }

    /// Consumes pending wakes so the (level-triggered) fd stops polling
    /// ready. Losing a wake is impossible: the completion queue is checked
    /// after every drain.
    pub fn drain(&self) {
        let mut counter: u64 = 0;
        // SAFETY: reads at most 8 bytes (the eventfd ABI unit) into a live
        // stack u64 from an fd this struct owns; the fd is nonblocking so
        // this cannot park.
        let _ = unsafe { read(self.fd, (&mut counter as *mut u64).cast::<c_void>(), 8) };
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: `self.fd` is a valid eventfd this struct exclusively owns;
        // after this call nothing reads it again.
        unsafe { close(self.fd) };
    }
}

// SAFETY: Waker holds only an owned fd; write(2) on an eventfd is
// thread-safe, so concurrent `wake` calls from worker threads are sound.
unsafe impl Send for Waker {}
// SAFETY: same reasoning — all methods take &self and perform atomic
// syscalls on the owned fd.
unsafe impl Sync for Waker {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn tcp_readability_is_reported_with_the_token() {
        let epoll = Epoll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        epoll.add(server.as_raw_fd(), 42, Interest::READ).unwrap();

        let mut events = [EpollEvent::default(); 8];
        // nothing written yet: a zero-timeout wait reports nothing
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        client.write_all(b"ping").unwrap();
        client.flush().unwrap();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let event = events[0];
        assert_eq!({ event.data }, 42);
        assert_ne!({ event.events } & EPOLLIN, 0);

        // writable interest fires immediately on an idle socket
        epoll
            .modify(server.as_raw_fd(), 42, Interest::READ_WRITE)
            .unwrap();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert!(n >= 1);
        assert_ne!({ events[0].events } & EPOLLOUT, 0);

        epoll.delete(server.as_raw_fd()).unwrap();
        client.write_all(b"more").unwrap();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn peer_close_raises_hangup_readiness() {
        let epoll = Epoll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        epoll.add(server.as_raw_fd(), 7, Interest::READ).unwrap();
        drop(client);
        let mut events = [EpollEvent::default(); 8];
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let bits = { events[0].events };
        assert_ne!(
            bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP),
            0,
            "close must surface as readable/hup, got {bits:#x}"
        );
    }

    #[test]
    fn waker_wakes_a_parked_wait_and_drains() {
        let epoll = Epoll::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        epoll.add(waker.fd(), 0, Interest::READ).unwrap();

        let remote = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            remote.wake().unwrap();
            remote.wake().unwrap(); // coalescing second wake must not error
        });
        let mut events = [EpollEvent::default(); 4];
        let n = epoll.wait(&mut events, 5000).unwrap();
        assert_eq!(n, 1);
        assert_eq!({ events[0].data }, 0);
        t.join().unwrap();

        waker.drain();
        assert_eq!(
            epoll.wait(&mut events, 0).unwrap(),
            0,
            "drained waker must not stay ready"
        );
    }
}
