//! The model registry: named, fitted [`MvgClassifier`] instances behind
//! `Arc`s, each with its own micro-batch scheduler.
//!
//! Models are fitted either from the [`tsg_datasets`] catalogue — resolved
//! through the unified [`tsg_datasets::DatasetSource`], so a real UCR
//! directory (`TSG_UCR_DIR`) takes precedence and the on-disk dataset cache
//! keeps refits of a known dataset from regenerating its series — or from
//! training series supplied inline in the fit request. Each model records
//! the provenance of its training split (`synthetic` / `cached` / `real` /
//! `inline`) in its [`ModelInfo`]. Fitting replaces an existing model of the
//! same name atomically: in-flight requests against the old model finish on
//! the old batcher before it is torn down.

use crate::batcher::{BatchConfig, Batcher, ClassifyError, ClassifyOutput};
use crate::metrics::ServerMetrics;
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};
use std::time::Instant;
use tsg_core::{ClassifierChoice, FeatureConfig, MvgClassifier, MvgConfig};
use tsg_datasets::archive::ArchiveOptions;
use tsg_ml::gbt::GradientBoostingParams;
use tsg_parallel::ThreadPool;
use tsg_ts::Dataset;

/// Named classifier presets exposed on the wire (`"config"` field of a fit
/// request). Kept as a function of `(name, seed, n_threads)` so a client and
/// an in-process test can construct the *identical* configuration.
pub fn config_named(name: &str, seed: u64, n_threads: usize) -> Option<MvgConfig> {
    let base = match name {
        // full MVG features, small fixed booster — the serving default
        "fast" => MvgConfig::fast(),
        // the paper's grid-searched configuration (slow to fit)
        "paper" => MvgConfig::paper(),
        // uniscale features with a small booster — cheapest to fit and serve
        "uvg-fast" => MvgConfig {
            features: FeatureConfig::uvg(),
            classifier: ClassifierChoice::GradientBoosting(GradientBoostingParams {
                n_estimators: 20,
                max_depth: 3,
                learning_rate: 0.2,
                subsample: 0.8,
                colsample_bytree: 0.8,
                ..Default::default()
            }),
            oversample: true,
            n_threads: 0,
            seed: 0,
        },
        _ => return None,
    };
    Some(MvgConfig {
        n_threads,
        seed,
        ..base
    })
}

/// Names of the presets accepted by [`config_named`].
pub const CONFIG_PRESETS: [&str; 3] = ["fast", "paper", "uvg-fast"];

/// Where a model's training data came from.
#[derive(Debug, Clone)]
pub enum TrainingSource {
    /// A named dataset of the synthetic catalogue under a size budget.
    Catalogue {
        /// UCR dataset name.
        dataset: String,
        /// Generation budget and seed.
        options: ArchiveOptions,
    },
    /// Training series supplied inline in the fit request.
    Inline(Dataset),
}

/// Metadata of a fitted model (returned by `/models` and fit responses).
#[derive(Debug, Clone)]
pub struct ModelInfo {
    /// Registry name.
    pub name: String,
    /// Catalogue dataset the model was fitted on (`None` for inline fits).
    pub dataset: Option<String>,
    /// Configuration preset name.
    pub config: String,
    /// Training instances.
    pub n_train: usize,
    /// Classes seen during fitting.
    pub n_classes: usize,
    /// Extracted features per series.
    pub n_features: usize,
    /// Wall-clock fit time in seconds.
    pub fit_seconds: f64,
    /// Where the training split came from: `synthetic`, `cached`, `real`
    /// (a UCR directory via `TSG_UCR_DIR`) or `inline`.
    pub provenance: String,
}

/// A fitted model plus its scheduler.
pub struct ModelEntry {
    /// Metadata.
    pub info: ModelInfo,
    batcher: Batcher,
}

impl ModelEntry {
    /// Submits series for classification through the micro-batch scheduler.
    pub fn classify(
        &self,
        series: Vec<tsg_ts::TimeSeries>,
        want_proba: bool,
    ) -> Result<ClassifyOutput, ClassifyError> {
        self.batcher.classify(series, want_proba)
    }

    /// The fitted classifier behind this entry.
    pub fn classifier(&self) -> &Arc<MvgClassifier> {
        self.batcher.model()
    }
}

/// Errors surfaced by registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// No model with the requested name.
    UnknownModel(String),
    /// The preset name is not one of [`CONFIG_PRESETS`].
    UnknownConfig(String),
    /// The catalogue has no dataset with this name.
    UnknownDataset(String),
    /// Fitting failed.
    Fit(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownModel(n) => write!(f, "unknown model `{n}`"),
            RegistryError::UnknownConfig(n) => write!(
                f,
                "unknown config `{n}` (expected one of {})",
                CONFIG_PRESETS.join(", ")
            ),
            RegistryError::UnknownDataset(n) => write!(f, "unknown dataset `{n}`"),
            RegistryError::Fit(e) => write!(f, "fit failed: {e}"),
        }
    }
}

/// The registry proper.
pub struct ModelRegistry {
    models: RwLock<BTreeMap<String, Arc<ModelEntry>>>,
    pool: ThreadPool,
    batch_config: BatchConfig,
    metrics: Arc<ServerMetrics>,
    n_threads: usize,
}

impl ModelRegistry {
    /// Read-locks the model table, recovering on poison. Entries are only
    /// ever inserted/removed whole, so a panicking writer cannot leave the
    /// map half-updated — serving the recovered table beats refusing every
    /// request forever.
    fn models_read(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<String, Arc<ModelEntry>>> {
        self.models
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Write-locks the model table, recovering on poison (same reasoning as
    /// [`ModelRegistry::models_read`]).
    fn models_write(&self) -> std::sync::RwLockWriteGuard<'_, BTreeMap<String, Arc<ModelEntry>>> {
        self.models
            .write()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Creates an empty registry. `n_threads` sizes the shared extraction
    /// pool (`0` = process default).
    pub fn new(n_threads: usize, batch_config: BatchConfig, metrics: Arc<ServerMetrics>) -> Self {
        ModelRegistry {
            models: RwLock::new(BTreeMap::new()),
            pool: ThreadPool::new(n_threads),
            batch_config,
            metrics,
            n_threads: tsg_parallel::resolve_threads(n_threads),
        }
    }

    /// Fits a model and registers it under `name`, replacing any previous
    /// model of that name. Returns the new model's metadata.
    pub fn fit(
        &self,
        name: &str,
        source: TrainingSource,
        config_name: &str,
        seed: u64,
    ) -> Result<ModelInfo, RegistryError> {
        let config = config_named(config_name, seed, self.n_threads)
            .ok_or_else(|| RegistryError::UnknownConfig(config_name.to_string()))?;
        let (train, dataset_name, provenance) = match source {
            TrainingSource::Catalogue { dataset, options } => {
                // the unified resolver: TSG_UCR_DIR (real files) first, the
                // on-disk cache behind it, synthesis last. Only the training
                // split is materialised — fitting never touches (or hashes)
                // the often much larger _TEST file.
                let (train, provenance) = tsg_datasets::DatasetSource::from_env(options)
                    .resolve_split(&dataset, tsg_datasets::Split::Train)
                    .map_err(|e| match e {
                        tsg_datasets::SourceError::UnknownDataset(_) => {
                            RegistryError::UnknownDataset(dataset.clone())
                        }
                        other => RegistryError::Fit(other.to_string()),
                    })?;
                let provenance = provenance.kind.as_str().to_string();
                (train, Some(dataset), provenance)
            }
            TrainingSource::Inline(train) => (train, None, "inline".to_string()),
        };
        let started = Instant::now();
        let mut clf = MvgClassifier::new(config);
        clf.fit(&train)
            .map_err(|e| RegistryError::Fit(e.to_string()))?;
        let info = ModelInfo {
            name: name.to_string(),
            dataset: dataset_name,
            config: config_name.to_string(),
            n_train: train.len(),
            n_classes: clf.n_classes(),
            n_features: clf.feature_names().len(),
            fit_seconds: started.elapsed().as_secs_f64(),
            provenance,
        };
        let batcher = Batcher::new(
            Arc::new(clf),
            self.batch_config,
            self.pool.clone(),
            Arc::clone(&self.metrics),
        )
        .map_err(|e| RegistryError::Fit(format!("failed to start batch dispatcher: {e}")))?;
        let entry = Arc::new(ModelEntry {
            info: info.clone(),
            batcher,
        });
        self.metrics.models_fitted_total.inc();
        // the replaced entry (if any) drops outside the lock; its Drop joins
        // the old dispatcher once in-flight requests release their Arcs
        let _previous = self.models_write().insert(name.to_string(), entry);
        Ok(info)
    }

    /// Looks up a model by name.
    pub fn get(&self, name: &str) -> Result<Arc<ModelEntry>, RegistryError> {
        self.models_read()
            .get(name)
            .cloned()
            .ok_or_else(|| RegistryError::UnknownModel(name.to_string()))
    }

    /// Removes a model; returns whether it existed.
    pub fn remove(&self, name: &str) -> bool {
        self.models_write().remove(name).is_some()
    }

    /// Metadata of every registered model, sorted by name.
    pub fn list(&self) -> Vec<ModelInfo> {
        self.models_read()
            .values()
            .map(|e| e.info.clone())
            .collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models_read().len()
    }

    /// Whether no models are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Shuts down every batcher (draining queues with 503s).
    pub fn shutdown(&self) {
        // drop all entries; each Drop joins its dispatcher when the last
        // in-flight Arc releases
        self.models_write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_ts::TimeSeries;

    fn registry() -> ModelRegistry {
        ModelRegistry::new(
            1,
            BatchConfig::default(),
            Arc::new(ServerMetrics::default()),
        )
    }

    fn catalogue_source() -> TrainingSource {
        TrainingSource::Catalogue {
            dataset: "BeetleFly".into(),
            options: ArchiveOptions::bounded(8, 64, 3),
        }
    }

    #[test]
    fn fit_from_catalogue_and_classify() {
        let r = registry();
        let info = r.fit("demo", catalogue_source(), "uvg-fast", 3).unwrap();
        assert_eq!(info.name, "demo");
        assert_eq!(info.dataset.as_deref(), Some("BeetleFly"));
        assert_eq!(info.n_classes, 2);
        assert!(info.n_features > 0);
        // no TSG_UCR_DIR in the test environment: catalogue fits resolve
        // through the cache (or pure synthesis when the cache dir is absent)
        assert!(
            info.provenance == "cached" || info.provenance == "synthetic",
            "unexpected provenance {}",
            info.provenance
        );
        let entry = r.get("demo").unwrap();
        let series = vec![TimeSeries::new((0..64).map(|t| (t as f64).sin()).collect())];
        let out = entry.classify(series, false).unwrap();
        assert_eq!(out.predictions.len(), 1);
        assert_eq!(r.list().len(), 1);
        assert!(r.remove("demo"));
        assert!(r.get("demo").is_err());
        assert!(r.is_empty());
    }

    #[test]
    fn fit_from_inline_series() {
        let r = registry();
        let mut train = Dataset::new("inline");
        for i in 0..6 {
            let label = i % 2;
            let values: Vec<f64> = (0..48)
                .map(|t| {
                    if label == 0 {
                        ((t as f64) * 0.5).sin()
                    } else {
                        ((t * 13 + i * 7) % 11) as f64
                    }
                })
                .collect();
            train.push(TimeSeries::with_label(values, label));
        }
        let info = r
            .fit("inline", TrainingSource::Inline(train), "uvg-fast", 1)
            .unwrap();
        assert!(info.dataset.is_none());
        assert_eq!(info.n_train, 6);
        assert_eq!(info.provenance, "inline");
    }

    #[test]
    fn unknown_names_are_rejected() {
        let r = registry();
        assert_eq!(
            r.fit("m", catalogue_source(), "nope", 1).unwrap_err(),
            RegistryError::UnknownConfig("nope".into())
        );
        let missing = TrainingSource::Catalogue {
            dataset: "NotADataset".into(),
            options: ArchiveOptions::bounded(8, 64, 3),
        };
        assert_eq!(
            r.fit("m", missing, "uvg-fast", 1).unwrap_err(),
            RegistryError::UnknownDataset("NotADataset".into())
        );
        assert!(matches!(
            r.get("m").err(),
            Some(RegistryError::UnknownModel(_))
        ));
    }

    #[test]
    fn refit_replaces_model() {
        let r = registry();
        r.fit("m", catalogue_source(), "uvg-fast", 1).unwrap();
        let first = r.get("m").unwrap();
        r.fit("m", catalogue_source(), "uvg-fast", 2).unwrap();
        let second = r.get("m").unwrap();
        assert!(!Arc::ptr_eq(&first, &second));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn presets_resolve() {
        for preset in CONFIG_PRESETS {
            assert!(config_named(preset, 1, 2).is_some(), "{preset}");
        }
        assert!(config_named("bogus", 1, 2).is_none());
        let c = config_named("fast", 9, 3).unwrap();
        assert_eq!(c.seed, 9);
        assert_eq!(c.n_threads, 3);
    }
}
