//! The model registry: named, fitted [`MvgClassifier`] instances behind
//! `Arc`s, all feeding one shared micro-batch scheduler.
//!
//! Models are fitted either from the [`tsg_datasets`] catalogue — resolved
//! through the unified [`tsg_datasets::DatasetSource`], so a real UCR
//! directory (`TSG_UCR_DIR`) takes precedence and the on-disk dataset cache
//! keeps refits of a known dataset from regenerating its series — or from
//! training series supplied inline in the fit request. Each model records
//! the provenance of its training split (`synthetic` / `cached` / `real` /
//! `inline`) in its [`ModelInfo`].
//!
//! Every successful fit is stamped with a registry-wide monotonically
//! increasing **version** ([`ModelInfo::version`]). Fitting replaces an
//! existing model of the same name atomically, but in-flight classify
//! requests hold an `Arc` to the *entry* they resolved, so a hot-swap never
//! changes the model under a request that already passed routing. Clients
//! that must not race a swap at all pin the version in the classify request
//! (`"version": N`): when the registered version no longer matches, the
//! server answers `409 Conflict` instead of silently classifying with a
//! different model.

use crate::batcher::{BatchConfig, ClassifyError, ClassifyOutput, SharedBatcher};
use crate::metrics::ServerMetrics;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;
use tsg_core::{ClassifierChoice, FeatureConfig, MvgClassifier, MvgConfig};
use tsg_datasets::archive::ArchiveOptions;
use tsg_ml::gbt::GradientBoostingParams;
use tsg_parallel::ThreadPool;
use tsg_ts::Dataset;

/// Named classifier presets exposed on the wire (`"config"` field of a fit
/// request). Kept as a function of `(name, seed, n_threads)` so a client and
/// an in-process test can construct the *identical* configuration.
pub fn config_named(name: &str, seed: u64, n_threads: usize) -> Option<MvgConfig> {
    let base = match name {
        // full MVG features, small fixed booster — the serving default
        "fast" => MvgConfig::fast(),
        // the paper's grid-searched configuration (slow to fit)
        "paper" => MvgConfig::paper(),
        // uniscale features with a small booster — cheapest to fit and serve
        "uvg-fast" => MvgConfig {
            features: FeatureConfig::uvg(),
            classifier: ClassifierChoice::GradientBoosting(GradientBoostingParams {
                n_estimators: 20,
                max_depth: 3,
                learning_rate: 0.2,
                subsample: 0.8,
                colsample_bytree: 0.8,
                ..Default::default()
            }),
            oversample: true,
            n_threads: 0,
            seed: 0,
        },
        // the full tiered catalogue (graph features + statistical layer)
        // with a small fixed booster: the fit-wide-then-prune starting point
        "wide" => MvgConfig {
            features: FeatureConfig::wide(),
            ..MvgConfig::fast()
        },
        _ => return None,
    };
    Some(MvgConfig {
        n_threads,
        seed,
        ..base
    })
}

/// Names of the presets accepted by [`config_named`].
pub const CONFIG_PRESETS: [&str; 4] = ["fast", "paper", "uvg-fast", "wide"];

/// Where a model's training data came from.
#[derive(Debug, Clone)]
pub enum TrainingSource {
    /// A named dataset of the synthetic catalogue under a size budget.
    Catalogue {
        /// UCR dataset name.
        dataset: String,
        /// Generation budget and seed.
        options: ArchiveOptions,
    },
    /// Training series supplied inline in the fit request.
    Inline(Dataset),
}

/// Metadata of a fitted model (returned by `/models` and fit responses).
#[derive(Debug, Clone)]
pub struct ModelInfo {
    /// Registry name.
    pub name: String,
    /// Registry-wide monotonic fit counter; a refit under the same name gets
    /// a strictly larger version. Classify requests may pin this.
    pub version: u64,
    /// Catalogue dataset the model was fitted on (`None` for inline fits).
    pub dataset: Option<String>,
    /// Configuration preset name.
    pub config: String,
    /// Training instances.
    pub n_train: usize,
    /// Classes seen during fitting.
    pub n_classes: usize,
    /// Extracted features per series.
    pub n_features: usize,
    /// Wall-clock fit time in seconds.
    pub fit_seconds: f64,
    /// Where the training split came from: `synthetic`, `cached`, `real`
    /// (a UCR directory via `TSG_UCR_DIR`) or `inline`.
    pub provenance: String,
    /// The importance-selected feature subset a pruned model extracts, in
    /// wide-vector order; `None` for unpruned models (full catalogue of the
    /// preset). Persisted in snapshots (format v2) and validated against
    /// the running catalogue on restore.
    pub features: Option<Vec<String>>,
}

/// A fitted model resolved from the registry. The entry owns an `Arc` to its
/// classifier, so a request that resolved an entry keeps exactly that model
/// alive and in use even if a refit replaces the registry slot mid-flight.
pub struct ModelEntry {
    /// Metadata (including the pinnable version).
    pub info: ModelInfo,
    model: Arc<MvgClassifier>,
    batcher: Arc<SharedBatcher>,
}

impl ModelEntry {
    /// Submits series for classification through the shared micro-batch
    /// scheduler, blocking until the batch ran. In-process convenience; the
    /// event loop submits asynchronously via [`SharedBatcher::submit`].
    pub fn classify(
        &self,
        series: Vec<tsg_ts::TimeSeries>,
        want_proba: bool,
    ) -> Result<ClassifyOutput, ClassifyError> {
        self.batcher
            .classify(Arc::clone(&self.model), series, want_proba)
    }

    /// The fitted classifier behind this entry.
    pub fn classifier(&self) -> &Arc<MvgClassifier> {
        &self.model
    }
}

/// Errors surfaced by registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// No model with the requested name.
    UnknownModel(String),
    /// The preset name is not one of [`CONFIG_PRESETS`].
    UnknownConfig(String),
    /// The catalogue has no dataset with this name.
    UnknownDataset(String),
    /// Fitting failed.
    Fit(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownModel(n) => write!(f, "unknown model `{n}`"),
            RegistryError::UnknownConfig(n) => write!(
                f,
                "unknown config `{n}` (expected one of {})",
                CONFIG_PRESETS.join(", ")
            ),
            RegistryError::UnknownDataset(n) => write!(f, "unknown dataset `{n}`"),
            RegistryError::Fit(e) => write!(f, "fit failed: {e}"),
        }
    }
}

/// The registry proper: the name → entry table plus the single shared
/// batcher all entries classify through.
pub struct ModelRegistry {
    models: RwLock<BTreeMap<String, Arc<ModelEntry>>>,
    batcher: Arc<SharedBatcher>,
    /// Source of [`ModelInfo::version`] stamps.
    next_version: AtomicU64,
    metrics: Arc<ServerMetrics>,
    n_threads: usize,
    /// When set, every successful fit writes a crash-safe snapshot here and
    /// [`ModelRegistry::warm_restart`] reloads fitted models on boot.
    snapshot_dir: Option<std::path::PathBuf>,
}

impl ModelRegistry {
    /// Read-locks the model table, recovering on poison. Entries are only
    /// ever inserted/removed whole, so a panicking writer cannot leave the
    /// map half-updated — serving the recovered table beats refusing every
    /// request forever.
    fn models_read(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<String, Arc<ModelEntry>>> {
        self.models
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Write-locks the model table, recovering on poison (same reasoning as
    /// [`ModelRegistry::models_read`]).
    fn models_write(&self) -> std::sync::RwLockWriteGuard<'_, BTreeMap<String, Arc<ModelEntry>>> {
        self.models
            .write()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Creates an empty registry. `n_threads` sizes the shared extraction
    /// pool (`0` = process default). Fails only when the batch dispatcher
    /// thread cannot be spawned.
    pub fn new(
        n_threads: usize,
        batch_config: BatchConfig,
        metrics: Arc<ServerMetrics>,
    ) -> std::io::Result<Self> {
        let pool = ThreadPool::new(n_threads);
        let batcher = Arc::new(SharedBatcher::new(
            batch_config,
            pool,
            Arc::clone(&metrics),
        )?);
        Ok(ModelRegistry {
            models: RwLock::new(BTreeMap::new()),
            batcher,
            next_version: AtomicU64::new(1),
            metrics,
            n_threads: tsg_parallel::resolve_threads(n_threads),
            snapshot_dir: None,
        })
    }

    /// Enables crash-safe model snapshots under `dir`: every successful fit
    /// writes one, and [`ModelRegistry::warm_restart`] reloads them on boot.
    pub fn set_snapshot_dir(&mut self, dir: std::path::PathBuf) {
        self.snapshot_dir = Some(dir);
    }

    /// The shared micro-batch scheduler (for asynchronous submission by the
    /// event loop).
    pub fn batcher(&self) -> &Arc<SharedBatcher> {
        &self.batcher
    }

    /// Fits a model and registers it under `name`, replacing any previous
    /// model of that name. Returns the new model's metadata, stamped with a
    /// fresh registry-wide version.
    pub fn fit(
        &self,
        name: &str,
        source: TrainingSource,
        config_name: &str,
        seed: u64,
    ) -> Result<ModelInfo, RegistryError> {
        self.fit_impl(name, source, config_name, seed, None)
    }

    /// [`ModelRegistry::fit`] with importance-driven pruning: fits the full
    /// preset once, selects the `k` most important features from that wide
    /// fit, then refits on the pruned configuration and registers *that*
    /// model. The served model extracts only the selected columns, so its
    /// classify latency drops with the catalogue width. The selected names
    /// land in [`ModelInfo::features`] (and in the snapshot, format v2).
    pub fn fit_pruned(
        &self,
        name: &str,
        source: TrainingSource,
        config_name: &str,
        seed: u64,
        k: usize,
    ) -> Result<ModelInfo, RegistryError> {
        self.fit_impl(name, source, config_name, seed, Some(k))
    }

    fn fit_impl(
        &self,
        name: &str,
        source: TrainingSource,
        config_name: &str,
        seed: u64,
        prune: Option<usize>,
    ) -> Result<ModelInfo, RegistryError> {
        let config = config_named(config_name, seed, self.n_threads)
            .ok_or_else(|| RegistryError::UnknownConfig(config_name.to_string()))?;
        let (train, dataset_name, provenance) = match source {
            TrainingSource::Catalogue { dataset, options } => {
                // the unified resolver: TSG_UCR_DIR (real files) first, the
                // on-disk cache behind it, synthesis last. Only the training
                // split is materialised — fitting never touches (or hashes)
                // the often much larger _TEST file.
                let (train, provenance) = tsg_datasets::DatasetSource::from_env(options)
                    .resolve_split(&dataset, tsg_datasets::Split::Train)
                    .map_err(|e| match e {
                        tsg_datasets::SourceError::UnknownDataset(_) => {
                            RegistryError::UnknownDataset(dataset.clone())
                        }
                        other => RegistryError::Fit(other.to_string()),
                    })?;
                let provenance = provenance.kind.as_str().to_string();
                (train, Some(dataset), provenance)
            }
            TrainingSource::Inline(train) => (train, None, "inline".to_string()),
        };
        let started = Instant::now();
        let mut clf = MvgClassifier::new(config);
        clf.fit(&train)
            .map_err(|e| RegistryError::Fit(e.to_string()))?;
        // prune-and-refit: derive the top-k selection from the wide fit's
        // importances, then train the model that will actually serve on the
        // pruned configuration. fit_seconds deliberately covers both fits.
        let features = match prune {
            None => None,
            Some(k) => {
                let pruned = clf
                    .pruned_config(k)
                    .map_err(|e| RegistryError::Fit(e.to_string()))?;
                let names = pruned
                    .features
                    .selection
                    .as_ref()
                    .ok_or_else(|| {
                        RegistryError::Fit("pruned configuration carries no selection".into())
                    })?
                    .names()
                    .to_vec();
                let mut pruned_clf = MvgClassifier::new(pruned);
                pruned_clf
                    .fit(&train)
                    .map_err(|e| RegistryError::Fit(e.to_string()))?;
                clf = pruned_clf;
                Some(names)
            }
        };
        // the version is stamped only after a *successful* fit, so failed
        // fits never consume a version a client could be pinned against
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        let info = ModelInfo {
            name: name.to_string(),
            version,
            dataset: dataset_name,
            config: config_name.to_string(),
            n_train: train.len(),
            n_classes: clf.n_classes(),
            n_features: clf.feature_names().len(),
            fit_seconds: started.elapsed().as_secs_f64(),
            provenance,
            features,
        };
        let entry = Arc::new(ModelEntry {
            info: info.clone(),
            model: Arc::new(clf),
            batcher: Arc::clone(&self.batcher),
        });
        self.metrics.models_fitted_total.inc();
        // the replaced entry (if any) drops outside the lock; in-flight
        // requests keep the old model alive through their own Arcs
        let _previous = self.models_write().insert(name.to_string(), entry.clone());
        // snapshot-on-fit: best effort — a failed write never fails the fit
        // (the model is already serving), it only costs a refit on restart
        if let Some(dir) = &self.snapshot_dir {
            match entry.model.snapshot_bytes() {
                Ok(payload) => {
                    if let Err(e) = crate::snapshot::write_snapshot(dir, &info, seed, &payload) {
                        tsg_trace::log::warn(
                            "registry",
                            &format!(
                                "snapshot of `{name}` failed (still serving; will refit after restart)"
                            ),
                            None,
                            &[("error", &e.to_string())],
                        );
                    }
                }
                Err(e) => tsg_trace::log::warn(
                    "registry",
                    &format!("model `{name}` not snapshotted"),
                    None,
                    &[("error", &e.to_string())],
                ),
            }
        }
        Ok(info)
    }

    /// Reloads every valid snapshot under the snapshot directory, restoring
    /// models with their stored metadata — **including their versions**, so
    /// client version pins stay valid across a restart (the version counter
    /// resumes past the largest restored stamp). Corrupt, truncated or
    /// stale-config snapshots are counted in `snapshot_load_failures_total`
    /// and skipped: a bad snapshot degrades to a refit, never to serving a
    /// wrong model. Returns the number of models restored.
    pub fn warm_restart(&self) -> usize {
        let Some(dir) = self.snapshot_dir.clone() else {
            return 0;
        };
        let mut restored = 0usize;
        for path in crate::snapshot::list_snapshots(&dir) {
            match self.restore_one(&path) {
                Ok(info) => {
                    restored += 1;
                    self.next_version
                        .fetch_max(info.version + 1, Ordering::Relaxed);
                }
                Err(reason) => {
                    self.metrics.snapshot_load_failures_total.inc();
                    tsg_trace::log::warn(
                        "registry",
                        &format!(
                            "skipping snapshot {}: {reason} (model will be refitted on demand)",
                            path.display()
                        ),
                        None,
                        &[],
                    );
                }
            }
        }
        restored
    }

    /// Restores one snapshot file into the registry (see
    /// [`ModelRegistry::warm_restart`]).
    fn restore_one(&self, path: &std::path::Path) -> Result<ModelInfo, String> {
        let (info, seed, payload) =
            crate::snapshot::read_snapshot(path).map_err(|e| e.to_string())?;
        let mut config = config_named(&info.config, seed, self.n_threads)
            .ok_or_else(|| format!("unknown config preset `{}`", info.config))?;
        if let Some(names) = &info.features {
            // a pruned snapshot is only usable if every selected feature
            // still exists in the running catalogue; a snapshot from a
            // newer/older build that selected features we do not compute
            // must degrade to a refit, never restore a misaligned model
            let selection = tsg_core::FeatureSelection::new(names.clone());
            selection
                .validate(&config.features)
                .map_err(|e| format!("stored feature selection is invalid: {e}"))?;
            config.features.selection = Some(selection);
        }
        let clf = MvgClassifier::from_snapshot(config, &payload).map_err(|e| e.to_string())?;
        if clf.n_classes() != info.n_classes || clf.feature_names().len() != info.n_features {
            return Err("stored metadata does not match the restored model".into());
        }
        if let Some(names) = &info.features {
            if clf.feature_names() != names.as_slice() {
                return Err("stored feature list does not match the restored model".into());
            }
        }
        let entry = Arc::new(ModelEntry {
            info: info.clone(),
            model: Arc::new(clf),
            batcher: Arc::clone(&self.batcher),
        });
        self.models_write().insert(info.name.clone(), entry);
        Ok(info)
    }

    /// Looks up a model by name.
    pub fn get(&self, name: &str) -> Result<Arc<ModelEntry>, RegistryError> {
        self.models_read()
            .get(name)
            .cloned()
            .ok_or_else(|| RegistryError::UnknownModel(name.to_string()))
    }

    /// Removes a model (and its on-disk snapshot, so a deleted model does
    /// not resurrect on the next warm restart); returns whether it existed.
    pub fn remove(&self, name: &str) -> bool {
        let existed = self.models_write().remove(name).is_some();
        if existed {
            if let Some(dir) = &self.snapshot_dir {
                let _ = tsg_faults::fsio::remove_file(&crate::snapshot::snapshot_path(dir, name));
            }
        }
        existed
    }

    /// Metadata of every registered model, sorted by name.
    pub fn list(&self) -> Vec<ModelInfo> {
        self.models_read()
            .values()
            .map(|e| e.info.clone())
            .collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models_read().len()
    }

    /// Whether no models are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Shuts down the shared batcher (draining queued work with 503s) and
    /// drops every entry.
    pub fn shutdown(&self) {
        self.batcher.shutdown();
        self.models_write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_ts::TimeSeries;

    fn registry() -> ModelRegistry {
        ModelRegistry::new(
            1,
            BatchConfig::default(),
            Arc::new(ServerMetrics::default()),
        )
        .expect("spawn registry")
    }

    fn catalogue_source() -> TrainingSource {
        TrainingSource::Catalogue {
            dataset: "BeetleFly".into(),
            options: ArchiveOptions::bounded(8, 64, 3),
        }
    }

    #[test]
    fn fit_from_catalogue_and_classify() {
        let r = registry();
        let info = r.fit("demo", catalogue_source(), "uvg-fast", 3).unwrap();
        assert_eq!(info.name, "demo");
        assert_eq!(info.dataset.as_deref(), Some("BeetleFly"));
        assert_eq!(info.n_classes, 2);
        assert!(info.n_features > 0);
        // no TSG_UCR_DIR in the test environment: catalogue fits resolve
        // through the cache (or pure synthesis when the cache dir is absent)
        assert!(
            info.provenance == "cached" || info.provenance == "synthetic",
            "unexpected provenance {}",
            info.provenance
        );
        let entry = r.get("demo").unwrap();
        let series = vec![TimeSeries::new((0..64).map(|t| (t as f64).sin()).collect())];
        let out = entry.classify(series, false).unwrap();
        assert_eq!(out.predictions.len(), 1);
        assert_eq!(r.list().len(), 1);
        assert!(r.remove("demo"));
        assert!(r.get("demo").is_err());
        assert!(r.is_empty());
    }

    #[test]
    fn fit_from_inline_series() {
        let r = registry();
        let mut train = Dataset::new("inline");
        for i in 0..6 {
            let label = i % 2;
            let values: Vec<f64> = (0..48)
                .map(|t| {
                    if label == 0 {
                        ((t as f64) * 0.5).sin()
                    } else {
                        ((t * 13 + i * 7) % 11) as f64
                    }
                })
                .collect();
            train.push(TimeSeries::with_label(values, label));
        }
        let info = r
            .fit("inline", TrainingSource::Inline(train), "uvg-fast", 1)
            .unwrap();
        assert!(info.dataset.is_none());
        assert_eq!(info.n_train, 6);
        assert_eq!(info.provenance, "inline");
    }

    #[test]
    fn unknown_names_are_rejected() {
        let r = registry();
        assert_eq!(
            r.fit("m", catalogue_source(), "nope", 1).unwrap_err(),
            RegistryError::UnknownConfig("nope".into())
        );
        let missing = TrainingSource::Catalogue {
            dataset: "NotADataset".into(),
            options: ArchiveOptions::bounded(8, 64, 3),
        };
        assert_eq!(
            r.fit("m", missing, "uvg-fast", 1).unwrap_err(),
            RegistryError::UnknownDataset("NotADataset".into())
        );
        assert!(matches!(
            r.get("m").err(),
            Some(RegistryError::UnknownModel(_))
        ));
    }

    #[test]
    fn refit_replaces_model_and_bumps_version() {
        let r = registry();
        r.fit("m", catalogue_source(), "uvg-fast", 1).unwrap();
        let first = r.get("m").unwrap();
        r.fit("m", catalogue_source(), "uvg-fast", 2).unwrap();
        let second = r.get("m").unwrap();
        assert!(!Arc::ptr_eq(&first, &second));
        assert_eq!(r.len(), 1);
        assert!(
            second.info.version > first.info.version,
            "refit must advance the version ({} -> {})",
            first.info.version,
            second.info.version
        );
        // a request that resolved `first` before the swap still classifies
        // with the old model — hot-swaps never change a resolved entry
        let series = vec![TimeSeries::new((0..64).map(|t| (t as f64).sin()).collect())];
        let old = first.classify(series.clone(), false).unwrap();
        let direct = first
            .classifier()
            .predict(&Dataset::from_series("q", series))
            .unwrap();
        assert_eq!(old.predictions, direct);
    }

    #[test]
    fn versions_are_distinct_across_names() {
        let r = registry();
        let a = r.fit("a", catalogue_source(), "uvg-fast", 1).unwrap();
        let b = r.fit("b", catalogue_source(), "uvg-fast", 1).unwrap();
        assert!(b.version > a.version, "{} vs {}", a.version, b.version);
    }

    #[test]
    fn warm_restart_restores_bit_identical_models_and_rejects_corruption() {
        static DIR_SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "tsg-registry-snap-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let probe = vec![TimeSeries::new((0..64).map(|t| (t as f64).sin()).collect())];
        let probe_set = Dataset::from_series("probe", probe);

        let mut first = registry();
        first.set_snapshot_dir(dir.clone());
        let info = first
            .fit("demo", catalogue_source(), "uvg-fast", 3)
            .unwrap();
        let expected = first
            .get("demo")
            .unwrap()
            .classifier()
            .predict_proba(&probe_set)
            .unwrap();
        drop(first); // the original process is gone; only the snapshot remains

        let metrics = Arc::new(ServerMetrics::default());
        let second =
            ModelRegistry::new(1, BatchConfig::default(), Arc::clone(&metrics)).map(|mut r| {
                r.set_snapshot_dir(dir.clone());
                r
            });
        let second = second.unwrap();
        assert_eq!(second.warm_restart(), 1);
        assert_eq!(metrics.snapshot_load_failures_total.get(), 0);
        let entry = second.get("demo").unwrap();
        // metadata — version included — survives the restart
        assert_eq!(entry.info.version, info.version);
        assert_eq!(entry.info.dataset.as_deref(), Some("BeetleFly"));
        assert_eq!(entry.info.config, "uvg-fast");
        // predictions are bit-identical to the pre-restart model
        let restored = entry.classifier().predict_proba(&probe_set).unwrap();
        for (a, b) in expected.iter().zip(restored.iter()) {
            for (va, vb) in a.iter().zip(b.iter()) {
                assert_eq!(va.to_bits(), vb.to_bits(), "restored model drifted");
            }
        }
        // the version counter resumed past the restored stamp: a client pin
        // on the restored version can never be silently re-used by a new fit
        let refit = second
            .fit("other", catalogue_source(), "uvg-fast", 3)
            .unwrap();
        assert!(refit.version > info.version);

        // corrupt the snapshot: the next restart detects it, counts it and
        // serves nothing rather than garbage
        let snap = crate::snapshot::snapshot_path(&dir, "demo");
        let valid = std::fs::read(&snap).unwrap();
        std::fs::write(&snap, &valid[..valid.len() / 2]).unwrap();
        let metrics3 = Arc::new(ServerMetrics::default());
        let third = ModelRegistry::new(1, BatchConfig::default(), Arc::clone(&metrics3))
            .map(|mut r| {
                r.set_snapshot_dir(dir.clone());
                r
            })
            .unwrap();
        // "other"'s snapshot is still valid; only the corrupt one is skipped
        assert_eq!(third.warm_restart(), 1);
        assert_eq!(metrics3.snapshot_load_failures_total.get(), 1);
        assert!(third.get("demo").is_err());
        assert!(third.get("other").is_ok());

        // removing a model removes its snapshot — no resurrection on restart
        assert!(third.remove("other"));
        assert!(!crate::snapshot::snapshot_path(&dir, "other").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pruned_fit_serves_fewer_features_and_survives_warm_restart() {
        static DIR_SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "tsg-registry-prune-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let mut r = registry();
        r.set_snapshot_dir(dir.clone());
        let wide = r.fit("full", catalogue_source(), "uvg-fast", 3).unwrap();
        assert_eq!(wide.features, None, "unpruned fits carry no feature list");
        let k = 8;
        let pruned = r
            .fit_pruned("pruned", catalogue_source(), "uvg-fast", 3, k)
            .unwrap();
        let names = pruned.features.clone().expect("pruned fit records names");
        assert_eq!(names.len(), k);
        assert_eq!(pruned.n_features, k);
        assert!(pruned.n_features < wide.n_features);
        // the registered model really extracts only the selection
        let entry = r.get("pruned").unwrap();
        assert_eq!(entry.classifier().feature_names(), names.as_slice());
        let probe = Dataset::from_series(
            "probe",
            vec![TimeSeries::new((0..64).map(|t| (t as f64).sin()).collect())],
        );
        let expected = entry.classifier().predict_proba(&probe).unwrap();
        drop(r);

        // warm restart: the pruned model comes back bit-identical, with its
        // feature list intact (snapshot format v2)
        let metrics = Arc::new(ServerMetrics::default());
        let mut second =
            ModelRegistry::new(1, BatchConfig::default(), Arc::clone(&metrics)).unwrap();
        second.set_snapshot_dir(dir.clone());
        assert_eq!(second.warm_restart(), 2);
        assert_eq!(metrics.snapshot_load_failures_total.get(), 0);
        let restored = second.get("pruned").unwrap();
        assert_eq!(restored.info.features.as_deref(), Some(names.as_slice()));
        assert_eq!(restored.classifier().feature_names(), names.as_slice());
        let got = restored.classifier().predict_proba(&probe).unwrap();
        for (a, b) in expected.iter().zip(got.iter()) {
            for (va, vb) in a.iter().zip(b.iter()) {
                assert_eq!(va.to_bits(), vb.to_bits(), "pruned model drifted");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_claiming_unknown_features_is_skipped_not_served() {
        static DIR_SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "tsg-registry-badfeat-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let mut r = registry();
        r.set_snapshot_dir(dir.clone());
        let info = r.fit("good", catalogue_source(), "uvg-fast", 3).unwrap();
        // forge a snapshot whose feature list names a feature the running
        // catalogue does not compute (as if written by a different build)
        let payload = r
            .get("good")
            .unwrap()
            .classifier()
            .snapshot_bytes()
            .unwrap();
        let mut forged = info.clone();
        forged.name = "stale".into();
        forged.features = Some(vec!["T0 VG density".into(), "stat not_a_feature".into()]);
        crate::snapshot::write_snapshot(&dir, &forged, 3, &payload).unwrap();

        let metrics = Arc::new(ServerMetrics::default());
        let mut second =
            ModelRegistry::new(1, BatchConfig::default(), Arc::clone(&metrics)).unwrap();
        second.set_snapshot_dir(dir.clone());
        // only the honest snapshot restores; the stale one is counted and
        // skipped — never a panic, never a misaligned model
        assert_eq!(second.warm_restart(), 1);
        assert_eq!(metrics.snapshot_load_failures_total.get(), 1);
        assert!(second.get("good").is_ok());
        assert!(second.get("stale").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pruned_fit_error_paths_do_not_register_a_model() {
        let r = registry();
        assert!(matches!(
            r.fit_pruned("m", catalogue_source(), "uvg-fast", 1, 0),
            Err(RegistryError::Fit(_))
        ));
        assert!(matches!(
            r.fit_pruned("m", catalogue_source(), "nope", 1, 4),
            Err(RegistryError::UnknownConfig(_))
        ));
        assert!(r.get("m").is_err(), "failed pruned fits register nothing");
    }

    #[test]
    fn presets_resolve() {
        for preset in CONFIG_PRESETS {
            assert!(config_named(preset, 1, 2).is_some(), "{preset}");
        }
        assert!(config_named("bogus", 1, 2).is_none());
        let c = config_named("fast", 9, 3).unwrap();
        assert_eq!(c.seed, 9);
        assert_eq!(c.n_threads, 3);
    }
}
