//! # tsg_faults — deterministic, seeded fault injection
//!
//! The serving/storage stack survives production failures (EINTR storms,
//! ECONNRESET, short reads/writes, torn files, crashes mid-write) only if
//! those failures can be *reproduced on demand*. This crate is the single
//! seam: I/O call sites in `tsg_serve` (epoll wait, accept, connection
//! read/write) and the atomic file machinery in `tsg_datasets::cache` /
//! `tsg_serve::snapshot` consult it before touching the kernel, and it
//! answers — deterministically, from a per-site splitmix64 stream — whether
//! to inject a fault instead.
//!
//! ## Zero cost when disabled
//!
//! Everything is gated behind the `injection` cargo feature. With the
//! feature OFF (the default, and the state of every plain
//! `cargo build --release`), every seam function is an `#[inline(always)]`
//! constant (`None` / `0` / passthrough): the optimizer erases the call and
//! the hot path carries **no branch**. `cargo test` turns the feature on
//! through dev-dependency feature unification; release binaries opt in
//! explicitly via the consumers' `fault-injection` forwarding features.
//!
//! ## Activation (feature ON)
//!
//! Even when compiled in, injection is off until a plan is installed:
//!
//! * env: `TSG_FAULT_SEED=<u64>` + `TSG_FAULT_PLAN=<site:fault:rate,...>`
//!   read once at first seam use (how the chaos CI step drives release
//!   binaries);
//! * programmatic: [`configure`] / [`disable`] (how `tests/chaos.rs` swaps
//!   schedules between in-process servers).
//!
//! Plan grammar: comma-separated `site:fault:rate` triples, e.g.
//! `conn_read:eintr:0.05,conn_write:short:0.2,snap_write:torn:1`. Sites and
//! faults are listed in [`Site`] and [`Fault`]; `rate` is a probability in
//! `[0, 1]` evaluated against the site's own seeded stream, so a given
//! (seed, plan) pair yields the same fault schedule on every run.

use std::io;

/// Injection points. Network sites take network faults
/// (`eintr`/`eagain`/`short`/`reset`/`err`); file sites take file faults
/// (`err`, plus `torn`/`bitflip` on the write sites).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// Nonblocking connection read in the event loop (and the blocking
    /// request reader in `http.rs`).
    ConnRead,
    /// Nonblocking connection write/flush in the event loop.
    ConnWrite,
    /// `accept(2)` on the listener.
    Accept,
    /// `epoll_wait(2)` in the epoll shim.
    EpollWait,
    /// Dataset cache: file open for read.
    CacheOpen,
    /// Dataset cache: payload write to the tmp file.
    CacheWrite,
    /// Dataset cache: tmp → final rename.
    CacheRename,
    /// Dataset cache: fsync of the tmp file.
    CacheSync,
    /// Model snapshot: file open/read.
    SnapOpen,
    /// Model snapshot: payload write to the tmp file.
    SnapWrite,
    /// Model snapshot: tmp → final rename.
    SnapRename,
    /// Model snapshot: fsync of the tmp file.
    SnapSync,
}

/// Number of [`Site`] variants (per-site stream table size).
#[cfg(feature = "injection")]
const N_SITES: usize = 12;

impl Site {
    /// Dense index for the per-site stream table.
    #[cfg(feature = "injection")]
    fn index(self) -> usize {
        match self {
            Site::ConnRead => 0,
            Site::ConnWrite => 1,
            Site::Accept => 2,
            Site::EpollWait => 3,
            Site::CacheOpen => 4,
            Site::CacheWrite => 5,
            Site::CacheRename => 6,
            Site::CacheSync => 7,
            Site::SnapOpen => 8,
            Site::SnapWrite => 9,
            Site::SnapRename => 10,
            Site::SnapSync => 11,
        }
    }

    /// Plan-grammar name.
    pub fn name(self) -> &'static str {
        match self {
            Site::ConnRead => "conn_read",
            Site::ConnWrite => "conn_write",
            Site::Accept => "accept",
            Site::EpollWait => "epoll_wait",
            Site::CacheOpen => "cache_open",
            Site::CacheWrite => "cache_write",
            Site::CacheRename => "cache_rename",
            Site::CacheSync => "cache_sync",
            Site::SnapOpen => "snap_open",
            Site::SnapWrite => "snap_write",
            Site::SnapRename => "snap_rename",
            Site::SnapSync => "snap_sync",
        }
    }

    /// Parses a plan-grammar site name.
    pub fn from_name(s: &str) -> Option<Site> {
        Some(match s {
            "conn_read" => Site::ConnRead,
            "conn_write" => Site::ConnWrite,
            "accept" => Site::Accept,
            "epoll_wait" => Site::EpollWait,
            "cache_open" => Site::CacheOpen,
            "cache_write" => Site::CacheWrite,
            "cache_rename" => Site::CacheRename,
            "cache_sync" => Site::CacheSync,
            "snap_open" => Site::SnapOpen,
            "snap_write" => Site::SnapWrite,
            "snap_rename" => Site::SnapRename,
            "snap_sync" => Site::SnapSync,
            _ => return None,
        })
    }

    /// Whether this is a file-machinery site (vs a network site).
    #[cfg(feature = "injection")]
    fn is_file(self) -> bool {
        self.index() >= Site::CacheOpen.index()
    }

    /// Whether torn/bit-flip faults make sense here (payload write sites).
    #[cfg(feature = "injection")]
    fn is_payload_write(self) -> bool {
        matches!(self, Site::CacheWrite | Site::SnapWrite)
    }
}

/// Fault kinds, as they appear in the plan grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// `EINTR` — the call was interrupted; callers must retry.
    Eintr,
    /// `EAGAIN`/`EWOULDBLOCK` — spurious readiness; callers must re-arm.
    Eagain,
    /// Short read/write — the kernel moved fewer bytes than asked.
    Short,
    /// `ECONNRESET` — the peer vanished mid-conversation.
    Reset,
    /// A generic I/O error (`EIO`-flavoured).
    Err,
    /// Torn write: only a prefix of the payload reaches the file, but the
    /// operation *reports success* — the corruption is installed.
    Torn,
    /// One seeded bit of the payload is flipped, operation reports success.
    BitFlip,
}

impl Fault {
    /// Parses a plan-grammar fault name.
    pub fn from_name(s: &str) -> Option<Fault> {
        Some(match s {
            "eintr" => Fault::Eintr,
            "eagain" => Fault::Eagain,
            "short" => Fault::Short,
            "reset" => Fault::Reset,
            "err" => Fault::Err,
            "torn" => Fault::Torn,
            "bitflip" => Fault::BitFlip,
            _ => return None,
        })
    }

    /// Whether this fault is applicable at `site` (checked at plan parse).
    #[cfg(feature = "injection")]
    fn valid_at(self, site: Site) -> bool {
        match self {
            Fault::Err => true,
            Fault::Torn | Fault::BitFlip => site.is_payload_write(),
            Fault::Eintr => !site.is_file(),
            Fault::Eagain | Fault::Short | Fault::Reset => {
                !site.is_file() && site != Site::EpollWait && site != Site::Accept
            }
        }
    }
}

/// Outcome a network seam caller must apply *instead of* (or constraining)
/// the real syscall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Behave as if the syscall returned `EINTR`.
    Interrupt,
    /// Behave as if the syscall returned `EAGAIN`.
    WouldBlock,
    /// Perform the real call, but move at most one byte.
    Short,
    /// Behave as if the syscall returned `ECONNRESET`.
    Reset,
    /// Behave as if the syscall failed with a generic I/O error.
    Err,
}

impl NetFault {
    /// The `io::Error` this fault simulates, when it is an error
    /// (everything except [`NetFault::Short`]).
    pub fn to_error(self) -> Option<io::Error> {
        let kind = match self {
            NetFault::Interrupt => io::ErrorKind::Interrupted,
            NetFault::WouldBlock => io::ErrorKind::WouldBlock,
            NetFault::Reset => io::ErrorKind::ConnectionReset,
            NetFault::Err => io::ErrorKind::Other,
            NetFault::Short => return None,
        };
        Some(io::Error::new(kind, "injected fault (tsg_faults)"))
    }
}

/// Outcome a file seam applies. Payload values carry seeded randomness for
/// the cut/flip position so the schedule stays deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileFault {
    /// Fail the operation with a generic I/O error.
    Err,
    /// Write only a seeded prefix of the payload, report success.
    Torn(u64),
    /// Flip one seeded bit of the payload, report success.
    BitFlip(u64),
}

/// The generic injected I/O error.
fn injected_err() -> io::Error {
    io::Error::other("injected fault (tsg_faults)")
}

/// splitmix64 — the repo-wide seeding primitive (see `tsg_parallel`,
/// `serve_loadgen`). Deterministic, full-period, cheap.
#[cfg(feature = "injection")]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(feature = "injection")]
mod active {
    use super::{splitmix64, Fault, Site, N_SITES};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Mutex, Once};

    /// Fast-path gate: seams return `None` without locking when false.
    static ENABLED: AtomicBool = AtomicBool::new(false);
    /// Total faults actually injected (exported at `/metrics`).
    static INJECTED: AtomicU64 = AtomicU64::new(0);
    /// The installed plan; `None` while disabled.
    static PLAN: Mutex<Option<Plan>> = Mutex::new(None);
    /// One-shot env pickup (`TSG_FAULT_SEED`/`TSG_FAULT_PLAN`).
    static ENV_INIT: Once = Once::new();

    struct SiteRule {
        fault: Fault,
        rate: f64,
    }

    struct SiteState {
        rules: Vec<SiteRule>,
        rng: u64,
    }

    pub(super) struct Plan {
        sites: Vec<Option<SiteState>>,
    }

    /// Parses `site:fault:rate,...` into a plan with per-site streams
    /// derived from `seed`.
    pub(super) fn parse_plan(seed: u64, text: &str) -> Result<Plan, String> {
        let mut sites: Vec<Option<SiteState>> = Vec::with_capacity(N_SITES);
        for _ in 0..N_SITES {
            sites.push(None);
        }
        let mut any = false;
        for item in text.split([',', ';']) {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            let mut parts = item.split(':');
            let (site_s, fault_s, rate_s) =
                match (parts.next(), parts.next(), parts.next(), parts.next()) {
                    (Some(s), Some(f), Some(r), None) => (s.trim(), f.trim(), r.trim()),
                    _ => {
                        return Err(format!(
                            "malformed plan item `{item}` (want site:fault:rate)"
                        ))
                    }
                };
            let site = Site::from_name(site_s)
                .ok_or_else(|| format!("unknown fault site `{site_s}` in `{item}`"))?;
            let fault = Fault::from_name(fault_s)
                .ok_or_else(|| format!("unknown fault kind `{fault_s}` in `{item}`"))?;
            if !fault.valid_at(site) {
                return Err(format!(
                    "fault `{fault_s}` is not applicable at site `{site_s}`"
                ));
            }
            let rate: f64 = rate_s
                .parse()
                .map_err(|_| format!("bad rate `{rate_s}` in `{item}`"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("rate `{rate_s}` outside [0, 1] in `{item}`"));
            }
            let idx = site.index();
            if let Some(slot) = sites.get_mut(idx) {
                let state = slot.get_or_insert_with(|| SiteState {
                    rules: Vec::new(),
                    // distinct stream per site, decorrelated from `seed` itself
                    rng: {
                        let mut s = seed ^ (idx as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F);
                        splitmix64(&mut s);
                        s
                    },
                });
                state.rules.push(SiteRule { fault, rate });
                any = true;
            }
        }
        if !any {
            return Err("empty fault plan".to_string());
        }
        Ok(Plan { sites })
    }

    /// Installs a plan and arms the seams.
    pub(super) fn install(plan: Plan) {
        if let Ok(mut guard) = PLAN.lock() {
            *guard = Some(plan);
            ENABLED.store(true, Ordering::Release);
        }
    }

    /// Disarms the seams and drops the plan.
    pub(super) fn clear() {
        ENABLED.store(false, Ordering::Release);
        if let Ok(mut guard) = PLAN.lock() {
            *guard = None;
        }
    }

    /// Marks env pickup as done (used by programmatic `configure` so a
    /// later seam call cannot override it from the environment).
    pub(super) fn consume_env_init() {
        ENV_INIT.call_once(|| {});
    }

    /// One-shot env configuration. A malformed plan is reported to stderr
    /// and injection stays off — a chaos run with a typo'd plan must not
    /// silently masquerade as a clean run, so the message is loud.
    fn init_from_env() {
        // this file is a documented env entry point (ENV_ENTRY_POINTS in
        // tsg_analyze): TSG_FAULT_SEED/TSG_FAULT_PLAN are read exactly once
        let plan_text = match std::env::var("TSG_FAULT_PLAN") {
            Ok(v) if !v.trim().is_empty() => v,
            _ => return,
        };
        let seed: u64 = std::env::var("TSG_FAULT_SEED")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0);
        match parse_plan(seed, &plan_text) {
            Ok(plan) => {
                install(plan);
                eprintln!("tsg_faults: armed from env (seed {seed}, plan `{plan_text}`)");
            }
            Err(e) => eprintln!("tsg_faults: ignoring TSG_FAULT_PLAN: {e}"),
        }
    }

    /// Draws from `site`'s stream: the scheduled fault plus a payload word
    /// (cut/flip position), or `None`. Every applied fault is counted.
    pub(super) fn draw(site: Site) -> Option<(Fault, u64)> {
        ENV_INIT.call_once(init_from_env);
        if !ENABLED.load(Ordering::Acquire) {
            return None;
        }
        let mut guard = PLAN.lock().ok()?;
        let state = guard.as_mut()?.sites.get_mut(site.index())?.as_mut()?;
        for i in 0..state.rules.len() {
            let (fault, rate) = match state.rules.get(i) {
                Some(r) => (r.fault, r.rate),
                None => break,
            };
            // 53-bit uniform in [0, 1)
            let u = (splitmix64(&mut state.rng) >> 11) as f64 / (1u64 << 53) as f64;
            if u < rate {
                let payload = splitmix64(&mut state.rng);
                INJECTED.fetch_add(1, Ordering::Relaxed);
                return Some((fault, payload));
            }
        }
        None
    }

    pub(super) fn injected_total() -> u64 {
        INJECTED.load(Ordering::Relaxed)
    }

    pub(super) fn is_active() -> bool {
        ENABLED.load(Ordering::Acquire)
    }
}

// ---------------------------------------------------------------------------
// Public seam API — feature ON: consult the plan.
// ---------------------------------------------------------------------------

/// Installs a fault plan programmatically (see the plan grammar above) and
/// arms the seams. Process-global; tests serialise calls themselves.
#[cfg(feature = "injection")]
pub fn configure(seed: u64, plan: &str) -> Result<(), String> {
    active::consume_env_init();
    let plan = active::parse_plan(seed, plan)?;
    active::install(plan);
    Ok(())
}

/// Disarms the seams and drops the installed plan.
#[cfg(feature = "injection")]
pub fn disable() {
    active::consume_env_init();
    active::clear();
}

/// Whether a fault plan is currently armed.
#[cfg(feature = "injection")]
pub fn is_active() -> bool {
    active::is_active()
}

/// Total number of faults injected so far in this process.
#[cfg(feature = "injection")]
pub fn injected_total() -> u64 {
    active::injected_total()
}

/// Consults the plan at a network site.
#[cfg(feature = "injection")]
pub fn net_fault(site: Site) -> Option<NetFault> {
    match active::draw(site) {
        Some((Fault::Eintr, _)) => Some(NetFault::Interrupt),
        Some((Fault::Eagain, _)) => Some(NetFault::WouldBlock),
        Some((Fault::Short, _)) => Some(NetFault::Short),
        Some((Fault::Reset, _)) => Some(NetFault::Reset),
        Some((Fault::Err, _)) => Some(NetFault::Err),
        _ => None,
    }
}

/// Consults the plan at a file site.
#[cfg(feature = "injection")]
pub fn file_fault(site: Site) -> Option<FileFault> {
    match active::draw(site) {
        Some((Fault::Err, _)) => Some(FileFault::Err),
        Some((Fault::Torn, payload)) => Some(FileFault::Torn(payload)),
        Some((Fault::BitFlip, payload)) => Some(FileFault::BitFlip(payload)),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Public seam API — feature OFF: `#[inline(always)]` constants. The
// optimizer erases these entirely; the hot path carries no branch.
// ---------------------------------------------------------------------------

/// Injection is compiled out; installing a plan is an error.
#[cfg(not(feature = "injection"))]
pub fn configure(_seed: u64, _plan: &str) -> Result<(), String> {
    Err("tsg_faults built without the `injection` feature".to_string())
}

/// Injection is compiled out; nothing to disarm.
#[cfg(not(feature = "injection"))]
#[inline(always)]
pub fn disable() {}

/// Injection is compiled out; never active.
#[cfg(not(feature = "injection"))]
#[inline(always)]
pub fn is_active() -> bool {
    false
}

/// Injection is compiled out; nothing was ever injected.
#[cfg(not(feature = "injection"))]
#[inline(always)]
pub fn injected_total() -> u64 {
    0
}

/// Injection is compiled out; never faults.
#[cfg(not(feature = "injection"))]
#[inline(always)]
pub fn net_fault(_site: Site) -> Option<NetFault> {
    None
}

/// Injection is compiled out; never faults.
#[cfg(not(feature = "injection"))]
#[inline(always)]
pub fn file_fault(_site: Site) -> Option<FileFault> {
    None
}

// ---------------------------------------------------------------------------
// fsio — the injectable file seam
// ---------------------------------------------------------------------------

/// Filesystem wrappers the cache/snapshot machinery must use instead of
/// direct `std::fs` calls (enforced by the analyzer's `fault-seam` rule).
/// With injection disabled each wrapper inlines to the bare `std::fs` call.
pub mod fsio {
    use super::{file_fault, injected_err, FileFault, Site};
    use std::fs::File;
    use std::io::{self, Write as _};
    use std::path::Path;

    /// Passthrough `create_dir_all` (no fault site — directory creation is
    /// idempotent and not part of the torn-write threat model).
    pub fn create_dir_all(path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    /// Opens `path` for reading; `err` faults at `site` surface here.
    pub fn open(path: &Path, site: Site) -> io::Result<File> {
        if matches!(file_fault(site), Some(FileFault::Err)) {
            return Err(injected_err());
        }
        File::open(path)
    }

    /// Creates/truncates `path` for writing; `err` faults surface here.
    pub fn create(path: &Path, site: Site) -> io::Result<File> {
        if matches!(file_fault(site), Some(FileFault::Err)) {
            return Err(injected_err());
        }
        File::create(path)
    }

    /// Writes `bytes` to `file`. `torn` writes a seeded strict prefix and
    /// *reports success* (the corruption lands on disk, exactly like a
    /// crash mid-write after the rename); `bitflip` flips one seeded bit
    /// and reports success; `err` fails cleanly.
    pub fn write_all(file: &mut File, bytes: &[u8], site: Site) -> io::Result<()> {
        match file_fault(site) {
            Some(FileFault::Err) => Err(injected_err()),
            Some(FileFault::Torn(cut)) if !bytes.is_empty() => {
                let keep = (cut as usize) % bytes.len();
                match bytes.get(..keep) {
                    Some(prefix) => file.write_all(prefix),
                    None => file.write_all(bytes),
                }
            }
            Some(FileFault::BitFlip(pos)) if !bytes.is_empty() => {
                let mut copy = bytes.to_vec();
                let bit = (pos as usize) % (copy.len() * 8);
                if let Some(byte) = copy.get_mut(bit / 8) {
                    *byte ^= 1 << (bit % 8);
                }
                file.write_all(&copy)
            }
            _ => file.write_all(bytes),
        }
    }

    /// Durability barrier; `err` faults at `site` surface here.
    pub fn sync_all(file: &File, site: Site) -> io::Result<()> {
        if matches!(file_fault(site), Some(FileFault::Err)) {
            return Err(injected_err());
        }
        file.sync_all()
    }

    /// Atomic install (tmp → final); `err` faults at `site` surface here,
    /// simulating a crash *before* the rename (the final file is absent or
    /// stale, never half-written).
    pub fn rename(from: &Path, to: &Path, site: Site) -> io::Result<()> {
        if matches!(file_fault(site), Some(FileFault::Err)) {
            return Err(injected_err());
        }
        std::fs::rename(from, to)
    }

    /// Whole-file read; `err` faults at `site` surface here.
    pub fn read(path: &Path, site: Site) -> io::Result<Vec<u8>> {
        if matches!(file_fault(site), Some(FileFault::Err)) {
            return Err(injected_err());
        }
        std::fs::read(path)
    }

    /// Passthrough `remove_file` (cleanup of tmp litter; not injectable).
    pub fn remove_file(path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
}

#[cfg(all(test, feature = "injection"))]
mod tests {
    use super::*;
    use std::io::Read as _;
    use std::sync::Mutex;

    /// The plan is process-global; unit tests serialise on this.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn plan_parse_rejects_malformed_items() {
        let _g = locked();
        for bad in [
            "",
            "conn_read",
            "conn_read:eintr",
            "conn_read:eintr:2.0",
            "conn_read:eintr:x",
            "nope:eintr:0.5",
            "conn_read:nope:0.5",
            "conn_read:eintr:0.5:extra",
            // applicability: torn is a payload-write fault, reset is net-only
            "cache_open:torn:1",
            "cache_write:reset:1",
            "accept:short:1",
        ] {
            assert!(configure(1, bad).is_err(), "accepted `{bad}`");
        }
        disable();
    }

    #[test]
    fn same_seed_same_schedule() {
        let _g = locked();
        let sample = |seed: u64| -> Vec<Option<NetFault>> {
            configure(seed, "conn_read:eintr:0.3,conn_read:reset:0.2").unwrap();
            let drawn = (0..64).map(|_| net_fault(Site::ConnRead)).collect();
            disable();
            drawn
        };
        let a = sample(42);
        let b = sample(42);
        let c = sample(43);
        assert_eq!(a, b, "same seed must reproduce the schedule");
        assert_ne!(a, c, "different seed should differ");
        assert!(
            a.iter().any(|f| f.is_some()),
            "rate 0.5 over 64 draws must fire"
        );
        assert!(
            a.iter().any(|f| f.is_none()),
            "rate 0.5 over 64 draws must also pass"
        );
    }

    #[test]
    fn rate_edges_and_site_isolation() {
        let _g = locked();
        configure(7, "conn_write:reset:1,accept:err:0").unwrap();
        for _ in 0..8 {
            assert_eq!(net_fault(Site::ConnWrite), Some(NetFault::Reset));
            assert_eq!(net_fault(Site::Accept), None, "rate 0 never fires");
            assert_eq!(
                net_fault(Site::ConnRead),
                None,
                "unplanned site never fires"
            );
        }
        disable();
        assert_eq!(net_fault(Site::ConnWrite), None, "disable() disarms");
    }

    #[test]
    fn injected_counter_advances_only_on_hits() {
        let _g = locked();
        configure(9, "epoll_wait:eintr:1").unwrap();
        let before = injected_total();
        assert_eq!(net_fault(Site::EpollWait), Some(NetFault::Interrupt));
        assert_eq!(net_fault(Site::ConnRead), None);
        assert_eq!(injected_total() - before, 1);
        disable();
    }

    #[test]
    fn torn_write_installs_a_strict_prefix() {
        let _g = locked();
        let dir = std::env::temp_dir().join(format!("tsg_faults_torn_{}", std::process::id()));
        fsio::create_dir_all(&dir).unwrap();
        let path = dir.join("payload.bin");
        let payload: Vec<u8> = (0..255u8).collect();

        configure(11, "snap_write:torn:1").unwrap();
        let mut f = fsio::create(&path, Site::SnapOpen).unwrap();
        fsio::write_all(&mut f, &payload, Site::SnapWrite).unwrap();
        drop(f);
        disable();

        let mut written = Vec::new();
        std::fs::File::open(&path)
            .unwrap()
            .read_to_end(&mut written)
            .unwrap();
        assert!(written.len() < payload.len(), "torn write must truncate");
        assert_eq!(written, payload[..written.len()], "prefix must be intact");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bitflip_write_changes_exactly_one_bit() {
        let _g = locked();
        let dir = std::env::temp_dir().join(format!("tsg_faults_flip_{}", std::process::id()));
        fsio::create_dir_all(&dir).unwrap();
        let path = dir.join("payload.bin");
        let payload = vec![0u8; 64];

        configure(13, "snap_write:bitflip:1").unwrap();
        let mut f = fsio::create(&path, Site::SnapOpen).unwrap();
        fsio::write_all(&mut f, &payload, Site::SnapWrite).unwrap();
        drop(f);
        disable();

        let written = std::fs::read(&path).unwrap();
        assert_eq!(written.len(), payload.len());
        let flipped: u32 = written.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit must differ");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn err_faults_fail_cleanly_at_every_file_site() {
        let _g = locked();
        let dir = std::env::temp_dir().join(format!("tsg_faults_err_{}", std::process::id()));
        fsio::create_dir_all(&dir).unwrap();
        let path = dir.join("x.bin");
        std::fs::write(&path, b"hello").unwrap();

        configure(17, "cache_open:err:1,cache_rename:err:1,cache_sync:err:1").unwrap();
        assert!(fsio::open(&path, Site::CacheOpen).is_err());
        assert!(fsio::rename(&path, &dir.join("y.bin"), Site::CacheRename).is_err());
        let f = std::fs::File::open(&path).unwrap();
        assert!(fsio::sync_all(&f, Site::CacheSync).is_err());
        disable();

        assert!(
            fsio::open(&path, Site::CacheOpen).is_ok(),
            "disarmed seam passes through"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
