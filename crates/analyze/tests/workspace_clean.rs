//! The tier-1 gate: `cargo test` itself runs the invariant checker over
//! the checkout. A new HashMap in a deterministic crate, an unwrap on the
//! serving request path, an undocumented `unsafe`, or a reason-less
//! suppression fails this test — no separate CI wiring required (CI runs
//! the `tsg-analyze` binary too, for the report and the seeded self-check).

use std::path::Path;

#[test]
fn the_workspace_has_zero_unsuppressed_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let report = tsg_analyze::analyze_workspace(&root).expect("scan workspace");
    assert!(
        report.files_scanned > 50,
        "suspiciously small scan ({} files) — wrong root?",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "tsg-analyze found violations:\n\n{}",
        tsg_analyze::report::render_text(&report)
    );
    // every unsafe site in the workspace stays documented
    for site in &report.unsafe_inventory {
        assert!(
            site.documented,
            "undocumented unsafe at {}:{}",
            site.file, site.line
        );
    }
}
