//! Rule-fixture conformance suite: one positive (must flag) and one
//! negative (must stay silent) snippet per rule, plus the suppression
//! grammar and the machine-report shape.
//!
//! These fixtures are the analyzer's contract. A matcher change that
//! silently widens (false positives would make teams reach for blanket
//! suppressions) or narrows (violations slip through tier-1) a rule has to
//! show up here as a diff.

use tsg_analyze::{analyze_source, Report};

/// Analyzes a snippet as if it were the given file of the given crate.
fn analyze(crate_name: &str, rel_path: &str, source: &str) -> Report {
    let display = format!("crates/x/{rel_path}");
    analyze_source(crate_name, rel_path, &display, source)
}

fn finding_rules(report: &Report) -> Vec<&str> {
    report.findings.iter().map(|f| f.rule.as_str()).collect()
}

// ---------------------------------------------------------------- det-collections

#[test]
fn det_collections_flags_hash_collections_in_deterministic_crates() {
    let src = "use std::collections::{HashMap, HashSet};\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n";
    let report = analyze("tsg_core", "src/lib.rs", src);
    assert!(finding_rules(&report).contains(&"det-collections"));
}

#[test]
fn det_collections_accepts_btreemap_and_out_of_scope_crates() {
    let clean = analyze(
        "tsg_core",
        "src/lib.rs",
        "use std::collections::BTreeMap;\n",
    );
    assert!(clean.findings.is_empty(), "{:?}", clean.findings);
    // tsg_serve is not a deterministic crate: HashMap is legal there
    let serve = analyze(
        "tsg_serve",
        "src/metrics.rs",
        "use std::collections::HashMap;\n",
    );
    assert!(serve.findings.is_empty(), "{:?}", serve.findings);
    // mentions inside strings and comments never count
    let quoted = analyze(
        "tsg_core",
        "src/lib.rs",
        "// HashMap is banned here\nfn f() -> &'static str { \"HashMap\" }\n",
    );
    assert!(quoted.findings.is_empty(), "{:?}", quoted.findings);
}

#[test]
fn det_collections_ignores_test_modules_and_test_trees() {
    let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
    let report = analyze("tsg_core", "src/lib.rs", src);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    let tree = analyze(
        "tsg_core",
        "tests/foo.rs",
        "use std::collections::HashMap;\n",
    );
    assert!(tree.findings.is_empty(), "{:?}", tree.findings);
}

// ---------------------------------------------------------------- det-time

#[test]
fn det_time_flags_clock_reads() {
    let src = "use std::time::Instant;\nfn f() { let _ = Instant::now(); }\n";
    let report = analyze("tsg_ml", "src/forest.rs", src);
    assert!(finding_rules(&report).contains(&"det-time"));
    let sys = analyze(
        "tsg_ts",
        "src/lib.rs",
        "fn f() { let _ = std::time::SystemTime::now(); }\n",
    );
    assert!(finding_rules(&sys).contains(&"det-time"));
}

#[test]
fn det_time_accepts_duration_arithmetic() {
    // Duration is pure data — only the clock reads are nondeterministic
    let src = "use std::time::Duration;\nconst T: Duration = Duration::from_millis(2);\n";
    let report = analyze("tsg_ml", "src/forest.rs", src);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

// ---------------------------------------------------------------- det-rng

#[test]
fn det_rng_flags_ambient_entropy() {
    for src in [
        "fn f() { let mut rng = rand::thread_rng(); }\n",
        "fn f() { let rng = SmallRng::from_entropy(); }\n",
        "fn f() -> f64 { rand::random() }\n",
    ] {
        let report = analyze("tsg_ml", "src/lib.rs", src);
        assert!(finding_rules(&report).contains(&"det-rng"), "missed: {src}");
    }
}

#[test]
fn det_rng_accepts_seeded_rngs() {
    let src =
        "fn f() { let rng = ChaCha8Rng::seed_from_u64(7); let x = rng.random_range(0..9); }\n";
    let report = analyze("tsg_ml", "src/lib.rs", src);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

// ---------------------------------------------------------------- panic-freedom

#[test]
fn panic_freedom_flags_unwrap_expect_macros_and_indexing() {
    let cases = [
        ("fn f(x: Option<u8>) { x.unwrap(); }\n", "`.unwrap()`"),
        (
            "fn f(x: Option<u8>) { x.expect(\"boom\"); }\n",
            "`.expect()`",
        ),
        ("fn f() { panic!(\"no\"); }\n", "`panic!`"),
        (
            "fn f(x: u8) { match x { 0 => (), _ => unreachable!() } }\n",
            "`unreachable!`",
        ),
        ("fn f(v: &[u8]) -> u8 { v[0] }\n", "indexing"),
        ("fn f(v: &[u8], n: usize) -> &[u8] { &v[..n] }\n", "slicing"),
    ];
    for (src, what) in cases {
        let report = analyze("tsg_serve", "src/http.rs", src);
        assert!(
            finding_rules(&report).contains(&"panic-freedom"),
            "missed {what}: {src}"
        );
    }
}

#[test]
fn panic_freedom_accepts_recovering_formulations() {
    let cases = [
        // get-based access and error mapping
        "fn f(v: &[u8]) -> Option<u8> { v.get(0).copied() }\n",
        // unwrap_or / unwrap_or_else / unwrap_or_default are total
        "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n",
        "fn f(x: Option<u8>) -> u8 { x.unwrap_or_else(|| 1) }\n",
        "fn f(x: Option<u8>) -> u8 { x.unwrap_or_default() }\n",
        // a method *named* expect_byte is not `.expect(`
        "fn f(p: &mut Parser) { p.expect_byte(b'{'); }\n",
        // array type syntax and attribute brackets are not indexing
        "fn f() -> [u8; 4] { let x: [u8; 4] = [0; 4]; x }\n",
        "#[derive(Debug)]\nstruct S;\n",
    ];
    for src in cases {
        let report = analyze("tsg_serve", "src/http.rs", src);
        assert!(
            report.findings.is_empty(),
            "false positive on: {src}\n{:?}",
            report.findings
        );
    }
}

#[test]
fn panic_freedom_is_limited_to_the_request_path() {
    // metrics.rs is not on the request path; main.rs of other crates neither
    let src = "fn f(x: Option<u8>) { x.unwrap(); }\n";
    let metrics = analyze("tsg_serve", "src/metrics.rs", src);
    assert!(metrics.findings.is_empty(), "{:?}", metrics.findings);
    let elsewhere = analyze("tsg_core", "src/lib.rs", src);
    assert!(elsewhere.findings.is_empty(), "{:?}", elsewhere.findings);
}

// ---------------------------------------------------------------- unsafe-audit

#[test]
fn unsafe_audit_requires_safety_comments_even_in_tests() {
    let bare = "fn f() { unsafe { core::hint::unreachable_unchecked() } }\n";
    let report = analyze("tsg_graph", "src/lib.rs", bare);
    assert!(finding_rules(&report).contains(&"unsafe-audit"));
    assert_eq!(report.unsafe_inventory.len(), 1);
    assert!(!report.unsafe_inventory[0].documented);

    // unlike every other rule, test code is in scope
    let in_tests = analyze("tsg_graph", "tests/alloc.rs", bare);
    assert!(finding_rules(&in_tests).contains(&"unsafe-audit"));
}

#[test]
fn unsafe_audit_accepts_documented_sites_and_multiline_blocks() {
    let single =
        "fn f() {\n    // SAFETY: the pointer is valid for the whole call\n    unsafe { g() }\n}\n";
    let report = analyze("tsg_graph", "src/lib.rs", single);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert!(report.unsafe_inventory[0].documented);

    // a justification wrapping over several `//` lines still covers the
    // unsafe site directly below the block
    let multi = "fn f() {\n    // SAFETY: the buffer outlives the call because the caller\n    // holds the owning Vec alive across it, and the length was\n    // checked at construction.\n    unsafe { g() }\n}\n";
    let report = analyze("tsg_graph", "src/lib.rs", multi);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert!(report.unsafe_inventory[0].documented);
}

// ---------------------------------------------------------------- thread-discipline

#[test]
fn thread_discipline_flags_raw_thread_primitives() {
    for src in [
        "fn f() { std::thread::spawn(|| ()); }\n",
        "fn f() { thread::scope(|s| ()); }\n",
        "fn f() { std::thread::Builder::new(); }\n",
    ] {
        let report = analyze("tsg_ml", "src/forest.rs", src);
        assert!(
            finding_rules(&report).contains(&"thread-discipline"),
            "missed: {src}"
        );
    }
}

#[test]
fn thread_discipline_accepts_the_pool_and_the_owning_crates() {
    // going through the shared pool is the sanctioned path
    let pooled = "fn f(pool: &ThreadPool) { pool.scope(|s| { s.spawn(|| ()); }); }\n";
    let report = analyze("tsg_ml", "src/forest.rs", pooled);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    // tsg_parallel and tsg_serve own their threads
    let owner = analyze(
        "tsg_parallel",
        "src/lib.rs",
        "fn f() { std::thread::spawn(|| ()); }\n",
    );
    assert!(owner.findings.is_empty(), "{:?}", owner.findings);
    // sleep/yield_now are not spawning
    let sleep = analyze(
        "tsg_ml",
        "src/lib.rs",
        "fn f() { std::thread::sleep(D); }\n",
    );
    assert!(sleep.findings.is_empty(), "{:?}", sleep.findings);
}

// ---------------------------------------------------------------- env-discipline

#[test]
fn env_discipline_flags_ambient_configuration() {
    for src in [
        "fn f() { let _ = std::env::var(\"X\"); }\n",
        "fn f() { std::env::set_var(\"X\", \"1\"); }\n",
        "fn f() { for (_k, _v) in std::env::vars() {} }\n",
    ] {
        let report = analyze("tsg_core", "src/lib.rs", src);
        assert!(
            finding_rules(&report).contains(&"env-discipline"),
            "missed: {src}"
        );
    }
}

#[test]
fn env_discipline_exempts_documented_entry_points() {
    let src = "fn f() { let _ = std::env::var(\"TSC_MVG_THREADS\"); }\n";
    let entry = analyze("tsg_parallel", "src/lib.rs", src);
    assert!(entry.findings.is_empty(), "{:?}", entry.findings);
    // env::args / temp_dir are not the var family
    let args = analyze(
        "tsg_core",
        "src/lib.rs",
        "fn f() { let _ = std::env::args(); }\n",
    );
    assert!(args.findings.is_empty(), "{:?}", args.findings);
}

// ---------------------------------------------------------------- clock-discipline

#[test]
fn clock_discipline_flags_clock_types_outside_the_serving_layer() {
    let src = "use std::time::Instant;\nfn f() { let _ = Instant::now(); }\n";
    let report = analyze("tsg_graph", "src/lib.rs", src);
    assert!(finding_rules(&report).contains(&"clock-discipline"));
    let sys = analyze(
        "tsg_core",
        "src/extractor.rs",
        "fn f() { let _ = std::time::SystemTime::now(); }\n",
    );
    assert!(finding_rules(&sys).contains(&"clock-discipline"));
}

#[test]
fn clock_discipline_exempts_owning_crates_and_documented_harnesses() {
    let src = "use std::time::Instant;\nfn f() { let _ = Instant::now(); }\n";
    // the serving/tracing layer owns the clocks
    for (krate, path) in [
        ("tsg_serve", "src/event_loop.rs"),
        ("tsg_trace", "src/lib.rs"),
        // documented measurement harnesses are carved out file-by-file
        ("tsg_eval", "src/timing.rs"),
        ("tsg_bench", "src/bin/fig6_fig7_classifiers.rs"),
    ] {
        let report = analyze(krate, path, src);
        assert!(
            !finding_rules(&report).contains(&"clock-discipline"),
            "false positive in {krate}/{path}: {:?}",
            report.findings
        );
    }
    // test code measuring its own elapsed time is fine
    let in_tests = analyze(
        "tsg_graph",
        "tests/perf.rs",
        "fn f() { let _ = std::time::Instant::now(); }\n",
    );
    assert!(
        !finding_rules(&in_tests).contains(&"clock-discipline"),
        "{:?}",
        in_tests.findings
    );
    // Duration is pure data, not a clock read
    let duration = analyze(
        "tsg_graph",
        "src/lib.rs",
        "use std::time::Duration;\nconst T: Duration = Duration::from_millis(2);\n",
    );
    assert!(duration.findings.is_empty(), "{:?}", duration.findings);
}

#[test]
fn clock_discipline_overlaps_det_time_in_deterministic_crates() {
    // inside a det-* crate both rules fire: det-time states the determinism
    // contract, clock-discipline states the tracing-layer ownership contract
    let src = "fn f() { let _ = std::time::Instant::now(); }\n";
    let report = analyze("tsg_ml", "src/forest.rs", src);
    let rules = finding_rules(&report);
    assert!(rules.contains(&"det-time"), "{rules:?}");
    assert!(rules.contains(&"clock-discipline"), "{rules:?}");
}

// ---------------------------------------------------------------- suppressions

#[test]
fn a_reasoned_suppression_silences_and_is_reported() {
    let src = "// tsg-allow(det-collections): frozen before iteration, order never observed\nuse std::collections::HashMap;\n";
    let report = analyze("tsg_core", "src/lib.rs", src);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].finding.rule, "det-collections");
    assert_eq!(
        report.suppressed[0].reason,
        "frozen before iteration, order never observed"
    );
}

#[test]
fn suppression_covers_own_line_and_next_line_only() {
    let trailing = "use std::collections::HashMap; // tsg-allow(det-collections): reviewed\n";
    assert!(analyze("tsg_core", "src/lib.rs", trailing)
        .findings
        .is_empty());

    let above = "// tsg-allow(det-collections): reviewed\nuse std::collections::HashMap;\n";
    assert!(analyze("tsg_core", "src/lib.rs", above).findings.is_empty());

    // two lines away: no longer covered
    let far = "// tsg-allow(det-collections): reviewed\n\nuse std::collections::HashMap;\n";
    let report = analyze("tsg_core", "src/lib.rs", far);
    assert!(finding_rules(&report).contains(&"det-collections"));
}

#[test]
fn a_missing_reason_is_itself_a_finding() {
    let src = "// tsg-allow(det-collections)\nuse std::collections::HashMap;\n";
    let report = analyze("tsg_core", "src/lib.rs", src);
    let rules = finding_rules(&report);
    // the directive is rejected (reported under the suppression meta-rule)
    // AND the violation it failed to cover still fires
    assert!(rules.contains(&"suppression"), "{rules:?}");
    assert!(rules.contains(&"det-collections"), "{rules:?}");
}

#[test]
fn an_unknown_rule_name_is_itself_a_finding() {
    let src = "// tsg-allow(no-such-rule): because\nfn f() {}\n";
    let report = analyze("tsg_core", "src/lib.rs", src);
    assert!(finding_rules(&report).contains(&"suppression"));
}

#[test]
fn a_wrong_rule_suppression_does_not_silence_another_rule() {
    let src = "// tsg-allow(det-time): the wrong rule entirely\nuse std::collections::HashMap;\n";
    let report = analyze("tsg_core", "src/lib.rs", src);
    assert!(finding_rules(&report).contains(&"det-collections"));
}

// ---------------------------------------------------------------- machine report

#[test]
fn json_report_golden_shape() {
    let src = "\
// tsg-allow(det-time): timing this block is the point\n\
use std::time::Instant;\n\
use std::collections::HashMap;\n\
fn f() { unsafe { g() } }\n";
    let report = analyze("tsg_eval", "src/timing.rs", src);
    let json = tsg_analyze::report::render_json(&report).write();
    let golden = "{\"files_scanned\": 1, \
\"clean\": false, \
\"findings\": [\
{\"rule\": \"det-collections\", \"file\": \"crates/x/src/timing.rs\", \"line\": 3, \
\"message\": \"`HashMap` iterates in random order — use BTreeMap/BTreeSet or sorted keys\"}, \
{\"rule\": \"unsafe-audit\", \"file\": \"crates/x/src/timing.rs\", \"line\": 4, \
\"message\": \"`unsafe` without an adjacent `// SAFETY:` comment — justify the invariants that make it sound\"}\
], \
\"suppressed\": [\
{\"rule\": \"det-time\", \"file\": \"crates/x/src/timing.rs\", \"line\": 2, \
\"message\": \"`Instant` reads the wall clock — deterministic code must not observe time\", \
\"reason\": \"timing this block is the point\"}\
], \
\"unsafe_inventory\": [\
{\"file\": \"crates/x/src/timing.rs\", \"line\": 4, \"documented\": false}\
]}";
    assert_eq!(json, golden);
}
