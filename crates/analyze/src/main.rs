//! The `tsg-analyze` binary: run the invariant checker over a workspace
//! checkout and exit nonzero on any unsuppressed finding.
//!
//! ```text
//! tsg-analyze [--root DIR] [--json] [--list-rules]
//! ```
//!
//! `--root` defaults to the nearest ancestor directory containing a
//! `Cargo.toml` with a `[workspace]` section (so the binary works from any
//! subdirectory of the checkout and from CI's working directory alike).

use tsg_analyze::{engine, report};

struct Args {
    root: Option<std::path::PathBuf>,
    json: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        json: false,
        list_rules: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--root" => {
                i += 1;
                let dir = argv
                    .get(i)
                    .ok_or_else(|| "--root needs a directory".to_string())?;
                args.root = Some(std::path::PathBuf::from(dir));
            }
            "--json" => args.json = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                println!("usage: tsg-analyze [--root DIR] [--json] [--list-rules]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    Ok(args)
}

/// Walks up from the current directory to the workspace root (a
/// `Cargo.toml` containing `[workspace]`).
fn find_workspace_root() -> Option<std::path::PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("tsg-analyze: {e}");
            std::process::exit(2);
        }
    };
    if args.list_rules {
        print!("{}", report::render_rules());
        return;
    }
    let root = match args.root.or_else(find_workspace_root) {
        Some(root) => root,
        None => {
            eprintln!("tsg-analyze: no workspace root found (pass --root)");
            std::process::exit(2);
        }
    };
    let analysis = match engine::analyze_workspace(&root) {
        Ok(analysis) => analysis,
        Err(e) => {
            eprintln!("tsg-analyze: failed to scan {}: {e}", root.display());
            std::process::exit(2);
        }
    };
    if args.json {
        println!("{}", report::render_json(&analysis).write());
    } else {
        print!("{}", report::render_text(&analysis));
    }
    if !analysis.is_clean() {
        std::process::exit(1);
    }
}
