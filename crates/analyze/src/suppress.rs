//! Inline suppression comments.
//!
//! A finding is silenced by an adjacent comment of the form
//!
//! ```text
//! // tsg-allow(rule-id): reason the violation is intentional
//! ```
//!
//! The reason is **mandatory** — a suppression without one (or naming a
//! rule that does not exist) is itself a finding under the `suppression`
//! rule, so reviewers always see *why* an invariant is being waived. A
//! suppression applies to its own source line and the line directly below
//! it, which covers both placements:
//!
//! ```text
//! // tsg-allow(det-time): wall-clock timing is this module's purpose
//! let start = Instant::now();          // standalone comment above
//! let t = Instant::now(); // tsg-allow(det-time): trailing on the line
//! ```
//!
//! Several rules can share one comment: `tsg-allow(rule-a, rule-b): reason`.

use crate::lexer::{Tok, TokKind};

/// One parsed `tsg-allow` directive.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rule ids named in the directive.
    pub rules: Vec<String>,
    /// The mandatory justification (empty when the author omitted it —
    /// reported as a `suppression` finding, and the directive is ignored).
    pub reason: String,
    /// Line the comment sits on.
    pub line: u32,
}

/// A malformed directive (missing reason / unparsable rule list).
#[derive(Debug, Clone)]
pub struct SuppressionError {
    /// What is wrong with the directive.
    pub message: String,
    /// Line the comment sits on.
    pub line: u32,
}

/// The marker suppressions are recognised by.
pub const ALLOW_MARKER: &str = "tsg-allow(";

/// Doc comments never carry directives — documentation that *describes*
/// the suppression syntax (like this module's) must not activate it.
fn is_doc_comment(text: &str) -> bool {
    text.starts_with("//!")
        || text.starts_with("/*!")
        || (text.starts_with("///") && !text.starts_with("////"))
        || (text.starts_with("/**") && !text.starts_with("/***") && text != "/**/")
}

/// Extracts every suppression directive (and every malformed one) from a
/// token stream's comments.
pub fn collect(tokens: &[Tok]) -> (Vec<Suppression>, Vec<SuppressionError>) {
    let mut ok = Vec::new();
    let mut bad = Vec::new();
    for tok in tokens {
        if tok.kind != TokKind::Comment || is_doc_comment(&tok.text) {
            continue;
        }
        let mut rest = tok.text.as_str();
        while let Some(start) = rest.find(ALLOW_MARKER) {
            let after = &rest[start + ALLOW_MARKER.len()..];
            match parse_directive(after) {
                Ok((rules, reason, consumed)) => {
                    if reason.is_empty() {
                        bad.push(SuppressionError {
                            message: format!(
                                "tsg-allow({}) has no reason — a suppression must say why",
                                rules.join(", ")
                            ),
                            line: tok.line,
                        });
                    } else {
                        ok.push(Suppression {
                            rules,
                            reason,
                            line: tok.line,
                        });
                    }
                    rest = &after[consumed..];
                }
                Err(message) => {
                    bad.push(SuppressionError {
                        message,
                        line: tok.line,
                    });
                    rest = after;
                }
            }
        }
    }
    (ok, bad)
}

/// Parses `rule-a, rule-b): reason…` (the text after the marker). Returns
/// the rules, the reason (rest of the comment, trimmed) and how many bytes
/// of `text` the rule list consumed.
fn parse_directive(text: &str) -> Result<(Vec<String>, String, usize), String> {
    let close = text
        .find(')')
        .ok_or_else(|| "tsg-allow( is missing its closing `)`".to_string())?;
    let rules: Vec<String> = text[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("tsg-allow() names no rule".to_string());
    }
    let after_close = &text[close + 1..];
    let reason = match after_close.strip_prefix(':') {
        Some(r) => r.trim(),
        None => "",
    };
    Ok((rules, reason.to_string(), close + 1))
}

/// Index of suppressions by line for fast lookup during rule evaluation.
#[derive(Debug, Default)]
pub struct SuppressionIndex {
    entries: Vec<Suppression>,
}

impl SuppressionIndex {
    /// Builds the index from parsed directives.
    pub fn new(entries: Vec<Suppression>) -> Self {
        SuppressionIndex { entries }
    }

    /// The suppression covering `rule` at `line`, if any. A directive covers
    /// its own line and the next line.
    pub fn lookup(&self, rule: &str, line: u32) -> Option<&Suppression> {
        self.entries
            .iter()
            .find(|s| (s.line == line || s.line + 1 == line) && s.rules.iter().any(|r| r == rule))
    }

    /// All directives (for unknown-rule validation).
    pub fn entries(&self) -> &[Suppression] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn parses_single_rule_with_reason() {
        let toks = lex("// tsg-allow(det-time): timing is the point here\nlet x = 1;");
        let (ok, bad) = collect(&toks);
        assert!(bad.is_empty());
        assert_eq!(ok.len(), 1);
        assert_eq!(ok[0].rules, vec!["det-time"]);
        assert_eq!(ok[0].reason, "timing is the point here");
        assert_eq!(ok[0].line, 1);
    }

    #[test]
    fn doc_comments_are_not_directives() {
        let toks = lex("//! Suppress with `// tsg-allow(det-time): reason`.\n\
             /// Same in item docs: tsg-allow(det-rng): not a directive\n\
             // tsg-allow(det-time): this plain comment is one\n");
        let (ok, bad) = collect(&toks);
        assert!(bad.is_empty(), "{bad:?}");
        assert_eq!(ok.len(), 1);
        assert_eq!(ok[0].line, 3);
    }

    #[test]
    fn parses_multi_rule_directive() {
        let toks = lex("// tsg-allow(det-time, det-rng): both intentional\n");
        let (ok, bad) = collect(&toks);
        assert!(bad.is_empty());
        assert_eq!(ok[0].rules, vec!["det-time", "det-rng"]);
    }

    #[test]
    fn missing_reason_is_an_error() {
        for text in [
            "// tsg-allow(det-time)",
            "// tsg-allow(det-time):",
            "// tsg-allow(det-time):   ",
        ] {
            let (ok, bad) = collect(&lex(text));
            assert!(ok.is_empty(), "{text}");
            assert_eq!(bad.len(), 1, "{text}");
        }
    }

    #[test]
    fn malformed_directives_are_errors() {
        let (ok, bad) = collect(&lex("// tsg-allow(unclosed\n// tsg-allow(): no rule"));
        assert!(ok.is_empty());
        assert_eq!(bad.len(), 2);
    }

    #[test]
    fn index_covers_own_and_next_line() {
        let toks = lex("// tsg-allow(r): why\ncode();\nmore();");
        let (ok, _) = collect(&toks);
        let index = SuppressionIndex::new(ok);
        assert!(index.lookup("r", 1).is_some());
        assert!(index.lookup("r", 2).is_some());
        assert!(index.lookup("r", 3).is_none());
        assert!(index.lookup("other", 2).is_none());
    }

    #[test]
    fn directives_inside_strings_are_ignored() {
        let toks = lex(r#"let s = "tsg-allow(r): nope";"#);
        let (ok, bad) = collect(&toks);
        assert!(ok.is_empty() && bad.is_empty());
    }
}
