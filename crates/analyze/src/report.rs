//! Report rendering: human-readable text and machine-readable JSON.
//!
//! The JSON shape reuses [`tsg_serve::json::Json`] — the same zero-dep
//! value tree the serving wire format is built on — so downstream tooling
//! deals with one JSON dialect across the workspace. Findings are ordered
//! by `(file, line, rule)` in both formats, making reports diffable.

use crate::engine::Report;
use crate::rules::RULES;
use tsg_serve::json::Json;

/// Renders the human report. Findings come first (they are what fails the
/// run), then the reasoned suppressions, then the unsafe inventory.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    let documented = report
        .unsafe_inventory
        .iter()
        .filter(|s| s.documented)
        .count();
    out.push_str(&format!(
        "tsg-analyze: {} files scanned — {} finding(s), {} suppressed, {} unsafe site(s) ({} documented)\n",
        report.files_scanned,
        report.findings.len(),
        report.suppressed.len(),
        report.unsafe_inventory.len(),
        documented,
    ));
    if !report.findings.is_empty() {
        out.push('\n');
        for f in &report.findings {
            out.push_str(&format!(
                "{}:{} [{}] {}\n",
                f.file, f.line, f.rule, f.message
            ));
        }
    }
    if !report.suppressed.is_empty() {
        out.push_str("\nsuppressed (reviewed, reasoned):\n");
        for s in &report.suppressed {
            out.push_str(&format!(
                "  {}:{} [{}] — {}\n",
                s.finding.file, s.finding.line, s.finding.rule, s.reason
            ));
        }
    }
    if !report.unsafe_inventory.is_empty() {
        out.push_str("\nunsafe inventory:\n");
        for site in &report.unsafe_inventory {
            out.push_str(&format!(
                "  {}:{} {}\n",
                site.file,
                site.line,
                if site.documented {
                    "documented"
                } else {
                    "UNDOCUMENTED"
                }
            ));
        }
    }
    if report.is_clean() {
        out.push_str("\nworkspace clean: every invariant check passed\n");
    }
    out
}

/// Renders the machine report.
pub fn render_json(report: &Report) -> Json {
    let findings = report
        .findings
        .iter()
        .map(|f| {
            Json::obj(vec![
                ("rule", Json::Str(f.rule.clone())),
                ("file", Json::Str(f.file.clone())),
                ("line", Json::Num(f.line as f64)),
                ("message", Json::Str(f.message.clone())),
            ])
        })
        .collect();
    let suppressed = report
        .suppressed
        .iter()
        .map(|s| {
            Json::obj(vec![
                ("rule", Json::Str(s.finding.rule.clone())),
                ("file", Json::Str(s.finding.file.clone())),
                ("line", Json::Num(s.finding.line as f64)),
                ("message", Json::Str(s.finding.message.clone())),
                ("reason", Json::Str(s.reason.clone())),
            ])
        })
        .collect();
    let unsafe_inventory = report
        .unsafe_inventory
        .iter()
        .map(|site| {
            Json::obj(vec![
                ("file", Json::Str(site.file.clone())),
                ("line", Json::Num(site.line as f64)),
                ("documented", Json::Bool(site.documented)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("files_scanned", Json::Num(report.files_scanned as f64)),
        ("clean", Json::Bool(report.is_clean())),
        ("findings", Json::Arr(findings)),
        ("suppressed", Json::Arr(suppressed)),
        ("unsafe_inventory", Json::Arr(unsafe_inventory)),
    ])
}

/// Renders the rule catalogue (`--list-rules`).
pub fn render_rules() -> String {
    let mut out = String::from("rules:\n");
    for rule in RULES {
        out.push_str(&format!("  {:<18} {}\n", rule.id, rule.summary));
        out.push_str(&format!("  {:<18}   protects: {}\n", "", rule.protects));
    }
    out.push_str(
        "\nsuppress with `// tsg-allow(rule-id): reason` on (or directly above) the line;\n\
         the reason is mandatory and review-facing.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::analyze_source;

    #[test]
    fn text_report_mentions_findings_and_inventory() {
        let src = "use std::collections::HashMap;\nfn f() { unsafe { g() } }\n";
        let report = analyze_source("tsg_core", "src/lib.rs", "crates/core/src/lib.rs", src);
        let text = render_text(&report);
        assert!(text.contains("det-collections"));
        assert!(text.contains("crates/core/src/lib.rs:1"));
        assert!(text.contains("unsafe inventory"));
        assert!(text.contains("UNDOCUMENTED"));
    }

    #[test]
    fn json_report_is_parseable_and_structured() {
        let src = "// tsg-allow(det-time): timing here is deliberate\nuse std::time::Instant;\n";
        let report = analyze_source(
            "tsg_eval",
            "src/timing.rs",
            "crates/eval/src/timing.rs",
            src,
        );
        let json = render_json(&report);
        let reparsed = Json::parse(&json.write()).unwrap();
        assert_eq!(reparsed.get("clean").unwrap().as_bool(), Some(true));
        let suppressed = reparsed.get("suppressed").unwrap().as_array().unwrap();
        assert_eq!(suppressed.len(), 1);
        assert_eq!(
            suppressed[0].get("reason").unwrap().as_str(),
            Some("timing here is deliberate")
        );
    }

    #[test]
    fn rule_listing_names_every_rule() {
        let text = render_rules();
        for rule in RULES {
            assert!(text.contains(rule.id), "{} missing", rule.id);
        }
    }
}
