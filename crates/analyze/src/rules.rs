//! The rule catalogue and the token-pattern matchers.
//!
//! Every rule protects an invariant another part of the workspace proved at
//! some point and must not silently lose (see `docs/analysis-rules.md` for
//! the full catalogue with rationale). Rules are scoped per crate and per
//! file: a determinism rule has no business in the benchmark harness, and
//! panic-freedom is a property of the serving request path specifically.
//!
//! Matchers operate on the comment-free token stream produced by
//! [`crate::lexer`], with `#[cfg(test)]` items and `tests/`-tree files
//! already removed for rules that do not opt into test code.

use crate::lexer::Tok;

/// Which crates a rule applies to.
#[derive(Debug, Clone, Copy)]
pub enum CrateScope {
    /// Every crate in the workspace.
    All,
    /// Only the named crates.
    Only(&'static [&'static str]),
    /// Every crate except the named ones.
    Except(&'static [&'static str]),
}

/// Which files (crate-relative paths) a rule applies to within its crates.
#[derive(Debug, Clone, Copy)]
pub enum FileScope {
    /// Every file of an in-scope crate.
    All,
    /// Only the named `(crate, path)` pairs.
    Only(&'static [(&'static str, &'static str)]),
    /// Everything except the named `(crate, path)` pairs (documented
    /// exemptions such as config entry points).
    Except(&'static [(&'static str, &'static str)]),
}

/// A static-analysis rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable id used in findings and `tsg-allow(...)` directives.
    pub id: &'static str,
    /// One-line description for `--list-rules` and reports.
    pub summary: &'static str,
    /// The invariant (and the PR that established it) the rule protects.
    pub protects: &'static str,
    /// Crates the rule runs on.
    pub crates: CrateScope,
    /// Files the rule runs on within those crates.
    pub files: FileScope,
    /// Whether the rule also inspects test code (`#[cfg(test)]` modules and
    /// `tests/`/`benches/`/`examples/` trees).
    pub include_tests: bool,
}

/// Crates whose outputs must be bit-reproducible (the determinism harness's
/// domain: extraction, graphs, models, datasets, baselines and the
/// statistics the eval crate derives from them).
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "tsg_ts",
    "tsg_graph",
    "tsg_core",
    "tsg_ml",
    "tsg_datasets",
    "tsg_baselines",
    "tsg_eval",
];

/// The panic-freedom domain: every module a byte from the network flows
/// through between `accept()` and the response write, plus the crash-safety
/// machinery behind it — the snapshot store and the fault-injection seams.
/// A corrupt snapshot or an injected fault must degrade to an error
/// response or a refit, never abort the process.
pub const REQUEST_PATH_FILES: &[(&str, &str)] = &[
    ("tsg_serve", "src/http.rs"),
    ("tsg_serve", "src/json.rs"),
    ("tsg_serve", "src/server.rs"),
    ("tsg_serve", "src/batcher.rs"),
    ("tsg_serve", "src/registry.rs"),
    ("tsg_serve", "src/epoll.rs"),
    ("tsg_serve", "src/event_loop.rs"),
    ("tsg_serve", "src/snapshot.rs"),
    ("tsg_faults", "src/lib.rs"),
    ("tsg_trace", "src/lib.rs"),
];

/// Files whose file I/O must flow through the [`tsg_faults::fsio`] seam so
/// deterministic fault schedules can reach every open/write/sync/rename of
/// the storage paths (the dataset cache and the model snapshot store).
pub const FAULT_SEAM_FILES: &[(&str, &str)] = &[
    ("tsg_datasets", "src/cache.rs"),
    ("tsg_serve", "src/snapshot.rs"),
];

/// The only tsg_serve files allowed to create threads: the ops worker
/// (`server.rs`), the shared batch dispatcher (`batcher.rs`) and the
/// load generator's client fan-out. The event loop and the epoll shim are
/// single-threaded by design and stay under thread-discipline.
pub const SERVE_THREAD_SPAWNERS: &[(&str, &str)] = &[
    ("tsg_serve", "src/server.rs"),
    ("tsg_serve", "src/batcher.rs"),
    ("tsg_serve", "src/bin/serve_loadgen.rs"),
];

/// The documented process-environment entry points; all other code must
/// receive configuration through arguments.
pub const ENV_ENTRY_POINTS: &[(&str, &str)] = &[
    ("tsg_parallel", "src/lib.rs"),
    ("tsg_datasets", "src/source.rs"),
    ("tsg_datasets", "src/cache.rs"),
    ("tsg_faults", "src/lib.rs"),
    ("tsg_trace", "src/log.rs"),
];

/// Files outside the serving/tracing layer with a documented, reviewed need
/// to read the wall clock: the eval crate's explicit timing harness and the
/// benchmark binary's wall-clock report. Everything else must stay
/// clock-free and surface timings through the `tsg_core::TraceSink` seam.
pub const CLOCK_EXEMPT_FILES: &[(&str, &str)] = &[
    ("tsg_eval", "src/timing.rs"),
    ("tsg_bench", "src/bin/fig6_fig7_classifiers.rs"),
];

/// Id of the meta-rule that reports malformed/unknown suppressions.
pub const SUPPRESSION_RULE: &str = "suppression";

/// The workspace rule catalogue.
pub const RULES: &[Rule] = &[
    Rule {
        id: "det-collections",
        summary: "no HashMap/HashSet in deterministic crates (iteration order is random)",
        protects: "parallel == serial bit-identity (PR 2 determinism harness)",
        crates: CrateScope::Only(DETERMINISTIC_CRATES),
        files: FileScope::All,
        include_tests: false,
    },
    Rule {
        id: "det-time",
        summary: "no Instant/SystemTime in deterministic crates (wall-clock leaks into results)",
        protects: "parallel == serial bit-identity (PR 2 determinism harness)",
        crates: CrateScope::Only(DETERMINISTIC_CRATES),
        files: FileScope::All,
        include_tests: false,
    },
    Rule {
        id: "det-rng",
        summary: "no ambient RNG (thread_rng/from_entropy/rand::random) in deterministic crates",
        protects: "seeded reproducibility of every experiment (PR 1/PR 2)",
        crates: CrateScope::Only(DETERMINISTIC_CRATES),
        files: FileScope::All,
        include_tests: false,
    },
    Rule {
        id: "panic-freedom",
        summary: "no unwrap/expect/panic!/unreachable!/unchecked indexing in the request path",
        protects: "a malformed request never kills a connection thread (PR 4 serving \
                   layer); a corrupt snapshot or injected fault degrades, never aborts (PR 8)",
        crates: CrateScope::Only(&["tsg_serve", "tsg_faults", "tsg_trace"]),
        files: FileScope::Only(REQUEST_PATH_FILES),
        include_tests: false,
    },
    Rule {
        id: "unsafe-audit",
        summary: "every `unsafe` must carry an adjacent `// SAFETY:` justification",
        protects: "memory safety is reviewable: no unexplained unsafe anywhere",
        crates: CrateScope::All,
        files: FileScope::All,
        include_tests: true,
    },
    Rule {
        id: "thread-discipline",
        summary: "no thread spawning outside tsg_parallel and the documented tsg_serve sites",
        protects: "one shared pool, one determinism story (PR 2 ThreadPool); the \
                   event loop and epoll shim stay single-threaded (PR 7)",
        crates: CrateScope::Except(&["tsg_parallel"]),
        files: FileScope::Except(SERVE_THREAD_SPAWNERS),
        include_tests: false,
    },
    Rule {
        id: "fault-seam",
        summary: "no direct std::fs / File I/O where the tsg_faults::fsio seam is mandatory",
        protects: "deterministic fault schedules reach every storage-path file touch \
                   (PR 8 chaos harness) — a bypassed seam is an untestable failure mode",
        crates: CrateScope::Only(&["tsg_datasets", "tsg_serve"]),
        files: FileScope::Only(FAULT_SEAM_FILES),
        include_tests: false,
    },
    Rule {
        id: "clock-discipline",
        summary: "no Instant/SystemTime outside tsg_serve/tsg_trace (plus documented harnesses)",
        protects: "tracing observes, never perturbs (PR 9 observability): every clock read \
                   lives in the serving/tracing layer; deterministic crates surface timings \
                   through the clock-free TraceSink seam",
        crates: CrateScope::Except(&["tsg_serve", "tsg_trace"]),
        files: FileScope::Except(CLOCK_EXEMPT_FILES),
        include_tests: false,
    },
    Rule {
        id: "env-discipline",
        summary: "no std::env::var outside the documented config entry points",
        protects:
            "configuration is explicit and testable (TSC_MVG_THREADS, TSG_UCR_DIR, cache dir)",
        crates: CrateScope::All,
        files: FileScope::Except(ENV_ENTRY_POINTS),
        include_tests: false,
    },
];

/// Looks up a rule by id (the `suppression` meta-rule is not in the table —
/// it has no scope and cannot be suppressed).
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// Whether `id` names a rule a `tsg-allow` directive may reference.
pub fn is_known_rule(id: &str) -> bool {
    rule_by_id(id).is_some()
}

impl Rule {
    /// Whether the rule applies to `crate_name`/`rel_path` at all.
    pub fn applies_to(&self, crate_name: &str, rel_path: &str) -> bool {
        let crate_ok = match self.crates {
            CrateScope::All => true,
            CrateScope::Only(list) => list.contains(&crate_name),
            CrateScope::Except(list) => !list.contains(&crate_name),
        };
        if !crate_ok {
            return false;
        }
        match self.files {
            FileScope::All => true,
            FileScope::Only(list) => list.iter().any(|(c, p)| *c == crate_name && *p == rel_path),
            FileScope::Except(list) => {
                !list.iter().any(|(c, p)| *c == crate_name && *p == rel_path)
            }
        }
    }
}

/// A rule hit before suppression filtering.
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// 1-based source line.
    pub line: u32,
    /// Human explanation with the offending construct named.
    pub message: String,
}

/// Keywords that may directly precede `[` without it being an index
/// expression (`&mut [f64]`, `return [..]`, `match x { .. => [..] }`).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "static", "struct", "super", "trait", "true", "type", "union",
    "unsafe", "use", "where", "while", "yield",
];

/// Runs the token matcher for `rule` over a comment-free token stream.
/// `safety_lines` is the set of lines carrying a `SAFETY:` comment (only
/// the unsafe-audit rule reads it).
pub fn check(rule: &Rule, toks: &[&Tok], safety_lines: &[u32]) -> Vec<RawFinding> {
    let mut out = Vec::new();
    match rule.id {
        "det-collections" => {
            flag_idents(toks, &["HashMap", "HashSet"], &mut out, |name| {
                format!("`{name}` iterates in random order — use BTreeMap/BTreeSet or sorted keys")
            });
        }
        "det-time" => {
            flag_idents(toks, &["Instant", "SystemTime"], &mut out, |name| {
                format!("`{name}` reads the wall clock — deterministic code must not observe time")
            });
        }
        "det-rng" => {
            flag_idents(toks, &["thread_rng", "from_entropy"], &mut out, |name| {
                format!("`{name}` draws ambient entropy — thread an explicit seeded RNG instead")
            });
            for i in path_heads(toks, "rand") {
                if toks[i + 3].is_ident("random") {
                    out.push(RawFinding {
                        line: toks[i + 3].line,
                        message: "`rand::random` draws ambient entropy — thread an explicit \
                                  seeded RNG instead"
                            .to_string(),
                    });
                }
            }
        }
        "panic-freedom" => check_panic_freedom(toks, &mut out),
        "unsafe-audit" => {
            for tok in toks {
                if tok.is_ident("unsafe") && !has_safety_comment(safety_lines, tok.line) {
                    out.push(RawFinding {
                        line: tok.line,
                        message: "`unsafe` without an adjacent `// SAFETY:` comment — justify \
                                  the invariants that make it sound"
                            .to_string(),
                    });
                }
            }
        }
        "thread-discipline" => {
            // raw std::thread entry points; going through the shared
            // ThreadPool (including its `scope` spawner) stays legal
            for i in path_heads(toks, "thread") {
                let tail = toks[i + 3];
                if ["spawn", "scope", "Builder"]
                    .iter()
                    .any(|n| tail.is_ident(n))
                {
                    out.push(RawFinding {
                        line: tail.line,
                        message: format!(
                            "`thread::{}` outside tsg_parallel/tsg_serve — run work on the \
                             shared ThreadPool",
                            tail.text
                        ),
                    });
                }
            }
        }
        "fault-seam" => {
            // std::fs entry points with an fsio equivalent (read_dir has
            // none and stays legal — listing is not in the torn-write
            // threat model)
            const FS_TAILS: &[&str] = &[
                "rename",
                "remove_file",
                "write",
                "read",
                "read_to_string",
                "copy",
                "create_dir_all",
                "OpenOptions",
            ];
            for i in path_heads(toks, "fs") {
                let tail = toks[i + 3];
                if FS_TAILS.iter().any(|n| tail.is_ident(n)) {
                    out.push(RawFinding {
                        line: tail.line,
                        message: format!(
                            "`fs::{}` bypasses the fault-injection seam — route this file \
                             touch through tsg_faults::fsio",
                            tail.text
                        ),
                    });
                }
            }
            for i in path_heads(toks, "File") {
                let tail = toks[i + 3];
                if tail.is_ident("open") || tail.is_ident("create") {
                    out.push(RawFinding {
                        line: tail.line,
                        message: format!(
                            "`File::{}` bypasses the fault-injection seam — use \
                             tsg_faults::fsio::{} so chaos schedules can reach it",
                            tail.text, tail.text
                        ),
                    });
                }
            }
        }
        "clock-discipline" => {
            flag_idents(toks, &["Instant", "SystemTime"], &mut out, |name| {
                format!(
                    "`{name}` reads a clock outside the serving/tracing layer — clocks live \
                     in tsg_trace/tsg_serve; expose timings through the TraceSink seam"
                )
            });
        }
        "env-discipline" => {
            const VAR_FAMILY: &[&str] =
                &["var", "var_os", "vars", "vars_os", "set_var", "remove_var"];
            for i in path_heads(toks, "env") {
                let tail = toks[i + 3];
                if VAR_FAMILY.iter().any(|v| tail.is_ident(v)) {
                    out.push(RawFinding {
                        line: tail.line,
                        message: format!(
                            "`env::{}` outside the documented config entry points — accept \
                             configuration through arguments",
                            tail.text
                        ),
                    });
                }
            }
        }
        other => {
            debug_assert!(false, "no matcher for rule `{other}`");
        }
    }
    out
}

/// Flags every occurrence of the given identifiers.
fn flag_idents(
    toks: &[&Tok],
    names: &[&str],
    out: &mut Vec<RawFinding>,
    message: impl Fn(&str) -> String,
) {
    for tok in toks {
        if names.iter().any(|n| tok.is_ident(n)) {
            out.push(RawFinding {
                line: tok.line,
                message: message(&tok.text),
            });
        }
    }
}

/// Indices `i` where the stream reads `head :: <something>` (so `toks[i+3]`
/// is the path segment after the separator).
fn path_heads<'a>(toks: &'a [&Tok], head: &'a str) -> impl Iterator<Item = usize> + 'a {
    (0..toks.len().saturating_sub(3)).filter(move |&i| {
        toks[i].is_ident(head) && toks[i + 1].is_punct(':') && toks[i + 2].is_punct(':')
    })
}

fn check_panic_freedom(toks: &[&Tok], out: &mut Vec<RawFinding>) {
    for (i, tok) in toks.iter().enumerate() {
        // .unwrap( / .expect(
        if (tok.is_ident("unwrap") || tok.is_ident("expect"))
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            out.push(RawFinding {
                line: tok.line,
                message: format!(
                    "`.{}()` can panic on a malformed request — return a 4xx/5xx wire error \
                     or recover explicitly",
                    tok.text
                ),
            });
        }
        // panicking macros
        if toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && ["panic", "unreachable", "todo", "unimplemented"]
                .iter()
                .any(|m| tok.is_ident(m))
        {
            out.push(RawFinding {
                line: tok.line,
                message: format!(
                    "`{}!` aborts the connection thread — request handling must degrade to an \
                     error response",
                    tok.text
                ),
            });
        }
        // unchecked index/slice: `expr[...]` where expr ends in an
        // identifier, `)` , `]` or `?`
        if tok.is_punct('[') && i > 0 {
            let prev = toks[i - 1];
            let indexes = (prev.kind == crate::lexer::TokKind::Ident
                && !NON_INDEX_KEYWORDS.contains(&prev.text.as_str())
                && prev.text != "self")
                || prev.is_punct(')')
                || prev.is_punct(']')
                || prev.is_punct('?');
            if indexes {
                out.push(RawFinding {
                    line: tok.line,
                    message: "unchecked `[...]` indexing can panic — use `.get(..)` and map the \
                              miss to a wire error (or suppress with the bounds proof)"
                        .to_string(),
                });
            }
        }
    }
}

/// Whether a `SAFETY:` comment sits on `line` or up to two lines above it
/// (covering a comment block directly over the unsafe site).
fn has_safety_comment(safety_lines: &[u32], line: u32) -> bool {
    safety_lines
        .iter()
        .any(|&l| l <= line && line.saturating_sub(l) <= 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_filter_crates_and_files() {
        let det = rule_by_id("det-collections").unwrap();
        assert!(det.applies_to("tsg_core", "src/extractor.rs"));
        assert!(!det.applies_to("tsg_serve", "src/server.rs"));
        assert!(!det.applies_to("tsg_bench", "src/lib.rs"));

        let panic = rule_by_id("panic-freedom").unwrap();
        assert!(panic.applies_to("tsg_serve", "src/http.rs"));
        assert!(panic.applies_to("tsg_serve", "src/epoll.rs"));
        assert!(panic.applies_to("tsg_serve", "src/event_loop.rs"));
        assert!(panic.applies_to("tsg_serve", "src/snapshot.rs"));
        assert!(panic.applies_to("tsg_faults", "src/lib.rs"));
        assert!(panic.applies_to("tsg_trace", "src/lib.rs"));
        assert!(!panic.applies_to("tsg_serve", "src/metrics.rs"));
        assert!(!panic.applies_to("tsg_core", "src/http.rs"));

        let seam = rule_by_id("fault-seam").unwrap();
        assert!(seam.applies_to("tsg_datasets", "src/cache.rs"));
        assert!(seam.applies_to("tsg_serve", "src/snapshot.rs"));
        assert!(!seam.applies_to("tsg_serve", "src/http.rs"));
        assert!(!seam.applies_to("tsg_faults", "src/lib.rs"));

        let env = rule_by_id("env-discipline").unwrap();
        assert!(!env.applies_to("tsg_parallel", "src/lib.rs"));
        assert!(!env.applies_to("tsg_trace", "src/log.rs"));
        assert!(env.applies_to("tsg_parallel", "src/other.rs"));
        assert!(env.applies_to("tsg_core", "src/lib.rs"));

        let clocks = rule_by_id("clock-discipline").unwrap();
        assert!(clocks.applies_to("tsg_core", "src/extractor.rs"));
        assert!(clocks.applies_to("tsg_graph", "src/lib.rs"));
        assert!(!clocks.applies_to("tsg_serve", "src/event_loop.rs"));
        assert!(!clocks.applies_to("tsg_trace", "src/lib.rs"));
        assert!(!clocks.applies_to("tsg_eval", "src/timing.rs"));
        assert!(!clocks.applies_to("tsg_bench", "src/bin/fig6_fig7_classifiers.rs"));

        let threads = rule_by_id("thread-discipline").unwrap();
        assert!(!threads.applies_to("tsg_serve", "src/server.rs"));
        assert!(!threads.applies_to("tsg_serve", "src/batcher.rs"));
        assert!(!threads.applies_to("tsg_parallel", "src/lib.rs"));
        assert!(threads.applies_to("tsg_serve", "src/event_loop.rs"));
        assert!(threads.applies_to("tsg_serve", "src/epoll.rs"));
        assert!(threads.applies_to("tsg_core", "src/extractor.rs"));
    }

    #[test]
    fn every_rule_id_is_unique_and_known() {
        for (i, rule) in RULES.iter().enumerate() {
            assert!(is_known_rule(rule.id));
            for other in &RULES[i + 1..] {
                assert_ne!(rule.id, other.id);
            }
        }
        assert!(
            !is_known_rule(SUPPRESSION_RULE),
            "meta-rule is not allowable"
        );
    }
}
