//! A hand-rolled Rust token scanner.
//!
//! The rule engine does not need a full parse of the language — only a
//! token stream that is *never confused* by the places naive text matching
//! goes wrong: comments, string literals (including raw strings with `#`
//! fences), char literals versus lifetimes, and nested block comments. The
//! scanner produces every token with its 1-based source line so findings
//! carry `file:line` anchors, and keeps comments as tokens of their own
//! because two rule families read them (`// SAFETY:` adjacency and
//! `// tsg-allow(...)` suppressions).

/// What kind of lexeme a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the scanner does not distinguish).
    Ident,
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character literal (`'a'`, `'\n'`).
    Char,
    /// Lifetime (`'a` — no closing quote).
    Lifetime,
    /// Numeric literal.
    Number,
    /// Line or block comment, text preserved verbatim.
    Comment,
}

/// One token with its source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Lexeme kind.
    pub kind: TokKind,
    /// The token's text. Comments keep their delimiters; strings keep their
    /// quotes (rules never need string *content*, only that it is a string).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// Scans `source` into tokens. The scanner is total: any byte sequence
/// produces *some* token stream (unknown characters become punctuation), so
/// the analyzer never refuses a file it cannot fully understand.
pub fn lex(source: &str) -> Vec<Tok> {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer {
    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                ' ' | '\t' | '\r' => self.bump(),
                '\n' => {
                    self.line += 1;
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line),
                '\'' => self.char_or_lifetime(line),
                c if c.is_ascii_digit() => self.number(line),
                c if c == '_' || c.is_alphabetic() => self.ident_or_prefixed_string(line),
                c => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.push(Tok { kind, text, line });
    }

    /// Consumes one char, tracking line numbers, and returns it.
    fn take(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        if c == '\n' {
            self.line += 1;
        }
        self.bump();
        Some(c)
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::Comment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.take() {
            text.push(c);
            let len = text.len();
            if len >= 2 && text.ends_with("/*") {
                depth += 1;
            } else if len >= 2 && text.ends_with("*/") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
        }
        self.push(TokKind::Comment, text, line);
    }

    /// A plain `"…"` string with backslash escapes.
    fn string(&mut self, line: u32) {
        let mut text = String::new();
        text.push(self.take().unwrap_or('"'));
        while let Some(c) = self.take() {
            text.push(c);
            if c == '\\' {
                if let Some(escaped) = self.take() {
                    text.push(escaped);
                }
            } else if c == '"' {
                break;
            }
        }
        self.push(TokKind::Str, text, line);
    }

    /// A raw string `r"…"` / `r#"…"#` (no escapes; closed by `"` plus the
    /// same number of `#` fences it was opened with). The caller has already
    /// consumed the `r`/`br` prefix.
    fn raw_string(&mut self, mut text: String, line: u32) {
        let mut fences = 0usize;
        while self.peek(0) == Some('#') {
            fences += 1;
            text.push('#');
            self.bump();
        }
        if self.peek(0) == Some('"') {
            text.push('"');
            self.bump();
            let closer: String = std::iter::once('"')
                .chain("#".repeat(fences).chars())
                .collect();
            while let Some(c) = self.take() {
                text.push(c);
                if text.ends_with(&closer) {
                    break;
                }
            }
        }
        self.push(TokKind::Str, text, line);
    }

    /// `'a'` is a char literal, `'a` is a lifetime; `'\n'` always a char.
    fn char_or_lifetime(&mut self, line: u32) {
        let mut text = String::from('\'');
        self.bump();
        match self.peek(0) {
            Some('\\') => {
                // escaped char literal: consume escape then up to closing quote
                while let Some(c) = self.take() {
                    text.push(c);
                    if c == '\\' {
                        if let Some(escaped) = self.take() {
                            text.push(escaped);
                        }
                    } else if c == '\'' {
                        break;
                    }
                }
                self.push(TokKind::Char, text, line);
            }
            Some(c) if c == '_' || c.is_alphanumeric() => {
                while let Some(c) = self.peek(0) {
                    if c == '_' || c.is_alphanumeric() {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if self.peek(0) == Some('\'') {
                    text.push('\'');
                    self.bump();
                    self.push(TokKind::Char, text, line);
                } else {
                    self.push(TokKind::Lifetime, text, line);
                }
            }
            Some(c) => {
                // a non-alphanumeric char literal like '+' or '"'
                text.push(c);
                self.bump();
                if self.peek(0) == Some('\'') {
                    text.push('\'');
                    self.bump();
                }
                self.push(TokKind::Char, text, line);
            }
            None => self.push(TokKind::Punct, text, line),
        }
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            let decimal_point =
                c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) && !text.contains('.');
            let exponent_sign = (c == '+' || c == '-')
                && matches!(text.chars().last(), Some('e' | 'E'))
                && self.peek(1).is_some_and(|d| d.is_ascii_digit());
            if c.is_ascii_alphanumeric() || c == '_' || decimal_point || exponent_sign {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Number, text, line);
    }

    fn ident_or_prefixed_string(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // string prefixes: r"…" r#"…"# b"…" br"…", and raw idents r#ident
        match (text.as_str(), self.peek(0)) {
            ("r" | "br" | "rb", Some('"' | '#')) => {
                if text.starts_with('r') && self.peek(0) == Some('#') {
                    // distinguish r#"raw string"# from r#ident
                    let after_fences = (1..)
                        .map(|i| self.peek(i))
                        .find(|c| *c != Some('#'))
                        .flatten();
                    if after_fences != Some('"') {
                        // raw identifier r#ident: consume the # and the ident
                        self.bump();
                        text.push('#');
                        while let Some(c) = self.peek(0) {
                            if c == '_' || c.is_alphanumeric() {
                                text.push(c);
                                self.bump();
                            } else {
                                break;
                            }
                        }
                        self.push(TokKind::Ident, text, line);
                        return;
                    }
                }
                self.raw_string(text, line)
            }
            ("b", Some('"')) => {
                let mut s = text;
                s.push('"');
                self.bump();
                // reuse the escaped-string loop body
                while let Some(c) = self.take() {
                    s.push(c);
                    if c == '\\' {
                        if let Some(escaped) = self.take() {
                            s.push(escaped);
                        }
                    } else if c == '"' {
                        break;
                    }
                }
                self.push(TokKind::Str, s, line);
            }
            _ => self.push(TokKind::Ident, text, line),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<(TokKind, String)> {
        lex(source).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_punct_numbers() {
        let toks = kinds("let x = foo::bar(1.5e-3);");
        assert_eq!(toks[0], (TokKind::Ident, "let".into()));
        assert_eq!(toks[3], (TokKind::Ident, "foo".into()));
        assert_eq!(toks[4], (TokKind::Punct, ":".into()));
        assert!(toks
            .iter()
            .any(|t| t.1 == "1.5e-3" && t.0 == TokKind::Number));
    }

    #[test]
    fn comments_are_tokens_with_lines() {
        let toks = lex("a // trailing\n/* block\nspans */ b");
        assert!(toks[1].text.contains("trailing") && toks[1].kind == TokKind::Comment);
        assert_eq!(toks[1].line, 1);
        assert_eq!(toks[2].kind, TokKind::Comment);
        assert_eq!(toks[2].line, 2);
        assert_eq!(toks[3].text, "b");
        assert_eq!(toks[3].line, 3);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], (TokKind::Ident, "x".into()));
    }

    #[test]
    fn strings_hide_their_content() {
        // an identifier inside a string must not surface as an Ident token
        let toks = kinds(r#"let s = "HashMap::new() // not a comment";"#);
        assert!(!toks
            .iter()
            .any(|t| t.0 == TokKind::Ident && t.1 == "HashMap"));
        assert!(!toks.iter().any(|t| t.0 == TokKind::Comment));
    }

    #[test]
    fn raw_strings_with_fences() {
        let toks = kinds(r###"x = r#"quote " inside"# ;"###);
        assert!(toks
            .iter()
            .any(|t| t.0 == TokKind::Str && t.1.contains("inside")));
        assert_eq!(toks.last().unwrap().0, TokKind::Punct);
    }

    #[test]
    fn byte_strings_and_escapes() {
        let toks = kinds(r#"write(b"\r\n\"x") + "a\\";"#);
        let strs: Vec<_> = toks.iter().filter(|t| t.0 == TokKind::Str).collect();
        assert_eq!(strs.len(), 2);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks.iter().filter(|t| t.0 == TokKind::Lifetime).collect();
        let chars: Vec<_> = toks.iter().filter(|t| t.0 == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#type = 1;");
        assert!(toks
            .iter()
            .any(|t| t.0 == TokKind::Ident && t.1 == "r#type"));
    }

    #[test]
    fn line_numbers_track_multiline_strings() {
        let toks = lex("let a = \"line1\nline2\";\nb");
        let b = toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 3);
    }
}
