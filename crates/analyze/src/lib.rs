//! # tsg-analyze — workspace invariant checker
//!
//! The reproduction's core guarantees are *workspace-wide invariants*, not
//! local properties: bit-identical parallel == serial results (PR 2),
//! allocation-free motif hot paths (PR 3), and a serving layer where a
//! malformed request must never kill a connection thread (PR 4). Tests
//! prove them for the code that exists today; this crate makes them
//! structural for the code that comes next. A hand-rolled Rust lexer
//! ([`lexer`]) feeds a token-stream rule engine ([`rules`], [`engine`])
//! with per-crate scoping, reviewed inline suppressions ([`suppress`]) and
//! both human and JSON reports ([`report`]).
//!
//! Run it with `cargo run -p tsg_analyze` (nonzero exit on any
//! unsuppressed finding), or let tier-1 do it: the conformance test in
//! `tests/workspace_clean.rs` runs the analyzer over the checkout on every
//! `cargo test`.
//!
//! In keeping with the workspace's zero-external-dep stance the crate uses
//! no proc macros, no `syn` — only `std` plus the in-workspace JSON tree
//! from `tsg_serve`.

pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod suppress;

pub use engine::{analyze_source, analyze_workspace, Finding, Report, Suppressed, UnsafeSite};
pub use rules::{Rule, RULES};
