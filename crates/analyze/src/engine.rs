//! File discovery and per-file analysis.
//!
//! The engine walks the workspace (`crates/*` plus the root facade's `src/`
//! and `tests/`), lexes every `.rs` file, strips `#[cfg(test)]` items for
//! rules that do not opt into test code, evaluates each in-scope rule's
//! matcher, and resolves `tsg-allow` suppressions into a final
//! [`Report`]. `vendor/` (offline stand-ins for external crates) and build
//! output are never scanned.

use crate::lexer::{lex, Tok, TokKind};
use crate::rules::{self, RULES, SUPPRESSION_RULE};
use crate::suppress::{self, SuppressionIndex};
use std::path::{Path, PathBuf};

/// One reportable violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Explanation.
    pub message: String,
}

/// A violation silenced by a reasoned `tsg-allow` directive.
#[derive(Debug, Clone)]
pub struct Suppressed {
    /// The finding that would have been reported.
    pub finding: Finding,
    /// The directive's justification.
    pub reason: String,
}

/// One `unsafe` occurrence, documented or not (the audit inventory).
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Whether an adjacent `// SAFETY:` comment exists.
    pub documented: bool,
}

/// The full analysis result.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings — any entry here fails the run.
    pub findings: Vec<Finding>,
    /// Findings silenced by reasoned suppressions.
    pub suppressed: Vec<Suppressed>,
    /// Every `unsafe` site in the workspace.
    pub unsafe_inventory: Vec<UnsafeSite>,
    /// Number of files analysed.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the workspace is clean (no unsuppressed findings).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Merges another file's results into this report.
    fn absorb(&mut self, other: Report) {
        self.findings.extend(other.findings);
        self.suppressed.extend(other.suppressed);
        self.unsafe_inventory.extend(other.unsafe_inventory);
        self.files_scanned += other.files_scanned;
    }
}

/// Analyses a single source text as `crate_name`/`rel_path` (the workspace
/// walker supplies `display_path` for anchors; tests can synthesise any
/// combination).
pub fn analyze_source(
    crate_name: &str,
    rel_path: &str,
    display_path: &str,
    source: &str,
) -> Report {
    let tokens = lex(source);
    let (directives, directive_errors) = suppress::collect(&tokens);
    let suppressions = SuppressionIndex::new(directives);

    // comment lines carrying a SAFETY justification, for unsafe-audit. A
    // justification often wraps over several `//` lines (each its own
    // comment token), so a contiguous run of comment lines counts as one
    // block: if any line of the run says SAFETY:, every line of the run
    // carries it — the `unsafe` below a three-line block is documented.
    let comment_lines: std::collections::BTreeSet<u32> = tokens
        .iter()
        .filter(|t| t.kind == TokKind::Comment)
        .flat_map(|t| {
            let extra = t.text.matches('\n').count() as u32;
            t.line..=t.line + extra
        })
        .collect();
    let mut safety_lines: Vec<u32> = Vec::new();
    for t in tokens
        .iter()
        .filter(|t| t.kind == TokKind::Comment && t.text.contains("SAFETY:"))
    {
        let mut line = t.line;
        safety_lines.push(line);
        // extend down through the rest of the contiguous comment run
        while comment_lines.contains(&(line + 1)) {
            line += 1;
            safety_lines.push(line);
        }
    }

    // two code views: with and without test items
    let all_code: Vec<&Tok> = tokens
        .iter()
        .filter(|t| t.kind != TokKind::Comment)
        .collect();
    let test_file = is_test_tree(rel_path);
    let non_test_code: Vec<&Tok> = if test_file {
        Vec::new()
    } else {
        strip_cfg_test_items(&all_code)
    };

    let mut report = Report {
        files_scanned: 1,
        ..Report::default()
    };

    // meta-rule: malformed directives and unknown rule names
    for err in directive_errors {
        report.findings.push(Finding {
            rule: SUPPRESSION_RULE.to_string(),
            file: display_path.to_string(),
            line: err.line,
            message: err.message,
        });
    }
    for directive in suppressions.entries() {
        for rule in &directive.rules {
            if !rules::is_known_rule(rule) {
                report.findings.push(Finding {
                    rule: SUPPRESSION_RULE.to_string(),
                    file: display_path.to_string(),
                    line: directive.line,
                    message: format!("tsg-allow names unknown rule `{rule}`"),
                });
            }
        }
    }

    for rule in RULES {
        if !rule.applies_to(crate_name, rel_path) {
            continue;
        }
        if test_file && !rule.include_tests {
            continue;
        }
        let toks: &[&Tok] = if rule.include_tests {
            &all_code
        } else {
            &non_test_code
        };
        for raw in rules::check(rule, toks, &safety_lines) {
            let finding = Finding {
                rule: rule.id.to_string(),
                file: display_path.to_string(),
                line: raw.line,
                message: raw.message,
            };
            match suppressions.lookup(rule.id, raw.line) {
                Some(s) => report.suppressed.push(Suppressed {
                    finding,
                    reason: s.reason.clone(),
                }),
                None => report.findings.push(finding),
            }
        }
    }

    // the unsafe inventory lists *every* site, documented or not
    for tok in &all_code {
        if tok.is_ident("unsafe") {
            let documented = safety_lines
                .iter()
                .any(|&l| l <= tok.line && tok.line - l <= 2);
            report.unsafe_inventory.push(UnsafeSite {
                file: display_path.to_string(),
                line: tok.line,
                documented,
            });
        }
    }

    report
}

/// Whether a crate-relative path lives in a test-only tree.
fn is_test_tree(rel_path: &str) -> bool {
    ["tests/", "benches/", "examples/"]
        .iter()
        .any(|p| rel_path.starts_with(p))
}

/// Removes items annotated `#[cfg(test)]` (and `#[test]`-style attributes'
/// items) from a comment-free token stream. `#[cfg(not(test))]` is *kept* —
/// that is production code. The scan is structural: after a test attribute,
/// the next item is skipped either to its `;` or through its balanced brace
/// block.
fn strip_cfg_test_items<'t>(code: &[&'t Tok]) -> Vec<&'t Tok> {
    let mut kept = Vec::with_capacity(code.len());
    let mut i = 0usize;
    while i < code.len() {
        if code[i].is_punct('#') && code.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            if let Some(close) = matching_bracket(code, i + 1) {
                let idents: Vec<&str> = code[i + 1..close]
                    .iter()
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.as_str())
                    .collect();
                let is_test_attr = (idents.contains(&"cfg")
                    && idents.contains(&"test")
                    && !idents.contains(&"not"))
                    || idents == ["test"];
                if is_test_attr {
                    i = skip_item(code, close + 1);
                    continue;
                }
            }
        }
        kept.push(code[i]);
        i += 1;
    }
    kept
}

/// Index of the `]` matching the `[` at `open` (None when unbalanced).
fn matching_bracket(code: &[&Tok], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, tok) in code.iter().enumerate().skip(open) {
        if tok.is_punct('[') {
            depth += 1;
        } else if tok.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Skips one item starting at `from`: any further attributes, then either a
/// `;`-terminated item or a balanced `{...}` block. Returns the index after
/// the item.
fn skip_item(code: &[&Tok], mut from: usize) -> usize {
    // further attributes on the same item
    while from < code.len()
        && code[from].is_punct('#')
        && code.get(from + 1).is_some_and(|t| t.is_punct('['))
    {
        match matching_bracket(code, from + 1) {
            Some(close) => from = close + 1,
            None => return code.len(),
        }
    }
    let mut depth = 0usize;
    let mut j = from;
    while j < code.len() {
        let tok = code[j];
        if tok.is_punct('{') {
            depth += 1;
        } else if tok.is_punct('}') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return j + 1;
            }
        } else if tok.is_punct(';') && depth == 0 {
            return j + 1;
        }
        j += 1;
    }
    code.len()
}

/// Analyses every source file reachable from `root` (a workspace checkout
/// with the `crates/<name>/…` layout). Results are ordered by file path so
/// reports are diffable.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files: Vec<(String, String, PathBuf)> = Vec::new(); // (crate, rel, abs)

    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for crate_dir in crate_dirs {
            let dir_name = crate_dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let crate_name = format!("tsg_{dir_name}");
            collect_rs_files(&crate_dir, &crate_dir, &crate_name, &mut files)?;
        }
    }
    // the root facade package
    for top in ["src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, root, "tsc_mvg", &mut files)?;
        }
    }
    files.sort();

    let mut report = Report::default();
    for (crate_name, rel_path, abs_path) in files {
        let source = std::fs::read_to_string(&abs_path)?;
        let display = abs_path
            .strip_prefix(root)
            .unwrap_or(&abs_path)
            .to_string_lossy()
            .replace('\\', "/");
        report.absorb(analyze_source(&crate_name, &rel_path, &display, &source));
    }
    report.findings.sort_by(order_findings);
    report
        .suppressed
        .sort_by(|a, b| order_findings(&a.finding, &b.finding));
    report
        .unsafe_inventory
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

fn order_findings(a: &Finding, b: &Finding) -> std::cmp::Ordering {
    (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule))
}

/// Recursively gathers `.rs` files under `dir`, recording paths relative to
/// `crate_root`. `target` build dirs are skipped.
fn collect_rs_files(
    dir: &Path,
    crate_root: &Path,
    crate_name: &str,
    out: &mut Vec<(String, String, PathBuf)>,
) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, crate_root, crate_name, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(crate_root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((crate_name.to_string(), rel, path));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_items_are_stripped() {
        let src = "use std::collections::HashMap;\n\
                   #[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        let report = analyze_source("tsg_core", "src/lib.rs", "crates/core/src/lib.rs", src);
        // only the production HashMap (line 1) surfaces
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].line, 1);
        assert_eq!(report.findings[0].rule, "det-collections");
    }

    #[test]
    fn cfg_not_test_is_production() {
        let src = "#[cfg(not(test))]\nuse std::collections::HashMap;\n";
        let report = analyze_source("tsg_core", "src/lib.rs", "f.rs", src);
        assert_eq!(report.findings.len(), 1);
    }

    #[test]
    fn test_tree_files_are_exempt_from_non_test_rules() {
        let src = "use std::collections::HashMap;\n";
        let report = analyze_source("tsg_core", "tests/foo.rs", "crates/core/tests/foo.rs", src);
        assert!(report.is_clean());
    }

    #[test]
    fn unsafe_audit_covers_test_trees() {
        let src = "fn f() { unsafe { std::hint::unreachable_unchecked() } }\n";
        let report = analyze_source("tsg_core", "tests/foo.rs", "t.rs", src);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "unsafe-audit");
        assert_eq!(report.unsafe_inventory.len(), 1);
        assert!(!report.unsafe_inventory[0].documented);
    }

    #[test]
    fn safety_comment_documents_unsafe() {
        let src =
            "fn f() {\n    // SAFETY: the invariant holds because …\n    unsafe { work() }\n}\n";
        let report = analyze_source("tsg_core", "src/lib.rs", "f.rs", src);
        assert!(report.is_clean(), "{:?}", report.findings);
        assert!(report.unsafe_inventory[0].documented);
    }

    #[test]
    fn fault_seam_bans_direct_fs_in_storage_paths() {
        let src = "fn f() {\n\
                   let _ = std::fs::rename(\"a\", \"b\");\n\
                   let _ = std::fs::File::create(\"x\");\n\
                   let _ = std::fs::read_dir(\".\");\n\
                   let _ = tsg_faults::fsio::rename(a, b, site);\n\
                   }\n";
        let report = analyze_source("tsg_serve", "src/snapshot.rs", "f.rs", src);
        let seam: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.rule == "fault-seam")
            .collect();
        assert_eq!(seam.len(), 2, "{:?}", report.findings);
        assert!(seam[0].message.contains("fs::rename"));
        assert!(seam[1].message.contains("File::create"));
        // the same source outside the storage paths is not in scope
        let report = analyze_source("tsg_serve", "src/metrics.rs", "f.rs", src);
        assert!(report.findings.iter().all(|f| f.rule != "fault-seam"));
    }

    #[test]
    fn suppression_silences_and_records() {
        let src = "// tsg-allow(det-time): timing is the module's purpose\n\
                   use std::time::Instant;\n";
        let report = analyze_source(
            "tsg_eval",
            "src/timing.rs",
            "crates/eval/src/timing.rs",
            src,
        );
        assert!(report.is_clean(), "{:?}", report.findings);
        assert_eq!(report.suppressed.len(), 1);
        assert_eq!(
            report.suppressed[0].reason,
            "timing is the module's purpose"
        );
    }

    #[test]
    fn unknown_rule_in_suppression_is_a_finding() {
        let src = "// tsg-allow(no-such-rule): whatever\nfn f() {}\n";
        let report = analyze_source("tsg_core", "src/lib.rs", "f.rs", src);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "suppression");
    }
}
