//! # tsg-trace — request-scoped tracing for the serving stack
//!
//! The paper's pitch is *efficiency*, and one end-to-end latency histogram
//! cannot say where a request's milliseconds actually go. This crate gives
//! every served request a trace: a process-unique ID minted at parse time,
//! a fixed taxonomy of typed stages ([`Stage`]), and an [`ActiveTrace`]
//! that accumulates per-stage wall time while the request travels through
//! the event loop, the batcher, feature extraction and the model.
//!
//! Design constraints, in the workspace's style:
//!
//! * **zero external deps** — `std` only, like everything else here;
//! * **the hot path never takes a mutex** — span timings are plain
//!   `Instant` reads accumulated into per-request atomics
//!   (`fetch_add`), and extraction workers batch their sub-stage timings
//!   in a stack-local [`StageSet`] (thread-owned by construction) that is
//!   flushed with one atomic add per stage;
//! * **tracing observes, never perturbs** — deterministic crates take a
//!   `TraceSink`-style seam whose no-op default inlines to nothing, so the
//!   only clock reads in the workspace live here and in `tsg_serve`
//!   (enforced by the `clock-discipline` analyzer rule).
//!
//! Completed traces land in the [`FlightRecorder`], a bounded ring buffer
//! the server exposes at `GET /debug/traces`. Recording a finished trace
//! touches one per-slot lock (uncontended by construction: slots are
//! addressed by a lock-free cursor), and happens once per request *after*
//! the response bytes hit the wire — off the latency-critical path.
//!
//! The [`log`] module is the companion structured logger (`TSG_LOG`
//! levels, JSON lines, trace-ID-stamped).

pub mod log;

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// The typed stages of a served request, in lifecycle order.
///
/// The taxonomy is fixed and small on purpose: every stage is a disjoint
/// sub-interval of the request's lifetime, so per-trace stage sums are
/// always ≤ the end-to-end total (the e2e suite asserts exactly that).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Incremental HTTP parse of this request's bytes.
    Parse,
    /// Submit → first observed by the batch dispatcher (backlog wait).
    QueueWait,
    /// Dispatcher's deliberate co-batching window for this request.
    BatchCoalesce,
    /// Multiscale representation build (PAA halvings), per series.
    Scale,
    /// Visibility-graph construction across all scales, per series.
    GraphBuild,
    /// Motif census over the built graphs, per series.
    MotifCount,
    /// Per-series statistical feature layer of the tiered catalogue.
    Statistical,
    /// Model inference over the batch's feature rows.
    Predict,
    /// Response body construction + HTTP serialization.
    Serialize,
    /// Response bytes entering the write buffer → fully on the wire.
    WriteOut,
}

impl Stage {
    /// Number of stages (the length of every per-trace stage array).
    pub const COUNT: usize = 10;

    /// All stages in lifecycle order — the canonical iteration order for
    /// rendering (`/metrics` labels, `/debug/traces` JSON).
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Parse,
        Stage::QueueWait,
        Stage::BatchCoalesce,
        Stage::Scale,
        Stage::GraphBuild,
        Stage::MotifCount,
        Stage::Statistical,
        Stage::Predict,
        Stage::Serialize,
        Stage::WriteOut,
    ];

    /// Stable snake_case name, used as the `stage` label on `/metrics`
    /// and the key in `/debug/traces` JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::QueueWait => "queue_wait",
            Stage::BatchCoalesce => "batch_coalesce",
            Stage::Scale => "scale",
            Stage::GraphBuild => "graph_build",
            Stage::MotifCount => "motif_count",
            Stage::Statistical => "statistical",
            Stage::Predict => "predict",
            Stage::Serialize => "serialize",
            Stage::WriteOut => "write_out",
        }
    }

    /// Index into per-trace stage arrays (the discriminant).
    pub fn index(self) -> usize {
        self as usize
    }
}

/// A stack-local accumulator of per-stage microseconds.
///
/// Extraction workers time sub-stages into one of these (plain `u64`s,
/// owned by the worker's stack frame — no sharing, no atomics) and flush
/// the result to the request's [`ActiveTrace`] with one atomic add per
/// non-zero stage. This is the "lock-free per-thread recorder": the
/// per-thread part is ownership, the lock-free part is the flush.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StageSet {
    micros: [u64; Stage::COUNT],
}

impl StageSet {
    /// Adds `micros` to a stage (saturating; a request cannot overflow
    /// u64 microseconds in practice, but the recorder must not panic).
    pub fn add(&mut self, stage: Stage, micros: u64) {
        if let Some(cell) = self.micros.get_mut(stage.index()) {
            *cell = cell.saturating_add(micros);
        }
    }

    /// Accumulated microseconds for one stage.
    pub fn get(&self, stage: Stage) -> u64 {
        self.micros.get(stage.index()).copied().unwrap_or(0)
    }

    /// True when no stage has recorded any time.
    pub fn is_empty(&self) -> bool {
        self.micros.iter().all(|&m| m == 0)
    }

    /// Flushes every non-zero stage into `trace` (one atomic add each).
    pub fn flush(&self, trace: &ActiveTrace) {
        for (stage, micros) in Stage::ALL.iter().zip(self.micros.iter()) {
            if *micros > 0 {
                trace.add_micros(*stage, *micros);
            }
        }
    }
}

/// Process-global trace ID allocator. IDs are unique by construction
/// (a single fetch-add counter), which is exactly what the pipelined
/// keep-alive uniqueness test pins down.
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// A live request trace: identity plus per-stage accumulators.
///
/// Shared as a [`TraceHandle`] between the event loop, the batcher and
/// worker threads; all mutation is atomic, so concurrent stages (a worker
/// flushing extraction timings while the loop stamps serialization) never
/// contend on a lock.
#[derive(Debug)]
pub struct ActiveTrace {
    id: u64,
    path: String,
    started: Instant,
    stage_micros: [AtomicU64; Stage::COUNT],
    status: AtomicU32,
    model: OnceLock<String>,
    faults_at_start: u64,
}

/// How traces travel: one `Arc` per request.
pub type TraceHandle = Arc<ActiveTrace>;

impl ActiveTrace {
    /// Begins a trace now. `faults_at_start` is the caller's snapshot of
    /// `tsg_faults::injected_total()` (this crate depends on nothing, so
    /// the counter is passed in) — [`ActiveTrace::finish`] turns the
    /// delta into the trace's fault attribution.
    pub fn begin(path: &str, faults_at_start: u64) -> TraceHandle {
        Self::begin_at(path, faults_at_start, Instant::now())
    }

    /// Begins a trace whose clock started at `started` — used by the
    /// event loop so the total includes the parse that *discovered* the
    /// request (the parse span must stay inside the total).
    pub fn begin_at(path: &str, faults_at_start: u64, started: Instant) -> TraceHandle {
        Arc::new(ActiveTrace {
            id: NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed),
            path: path.to_string(),
            started,
            stage_micros: std::array::from_fn(|_| AtomicU64::new(0)),
            status: AtomicU32::new(0),
            model: OnceLock::new(),
            faults_at_start,
        })
    }

    /// The process-unique trace ID.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The request path this trace was opened for.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Adds microseconds to a stage (lock-free).
    pub fn add_micros(&self, stage: Stage, micros: u64) {
        if let Some(cell) = self.stage_micros.get(stage.index()) {
            cell.fetch_add(micros, Ordering::Relaxed);
        }
    }

    /// Records an elapsed duration against a stage.
    pub fn record(&self, stage: Stage, elapsed: Duration) {
        self.add_micros(stage, elapsed.as_micros() as u64);
    }

    /// Starts an RAII span: the stage is recorded when the guard drops.
    pub fn span(&self, stage: Stage) -> SpanTimer<'_> {
        SpanTimer {
            trace: self,
            stage,
            started: Instant::now(),
        }
    }

    /// Stamps the model that served this request (first write wins; a
    /// request is served by exactly one model entry).
    pub fn set_model(&self, name: &str) {
        let _ = self.model.set(name.to_string());
    }

    /// Stamps the HTTP status of the response.
    pub fn set_status(&self, status: u16) {
        self.status.store(u32::from(status), Ordering::Relaxed);
    }

    /// Freezes the trace into a [`FinishedTrace`]. `faults_now` is the
    /// caller's current `injected_total()` snapshot; the recorded value
    /// is the delta since [`ActiveTrace::begin`].
    pub fn finish(&self, faults_now: u64) -> FinishedTrace {
        FinishedTrace {
            id: self.id,
            path: self.path.clone(),
            model: self.model.get().cloned(),
            status: self.status.load(Ordering::Relaxed) as u16,
            total_micros: self.started.elapsed().as_micros() as u64,
            stage_micros: std::array::from_fn(|i| {
                self.stage_micros
                    .get(i)
                    .map(|c| c.load(Ordering::Relaxed))
                    .unwrap_or(0)
            }),
            faults_injected: faults_now.saturating_sub(self.faults_at_start),
            seq: 0,
        }
    }
}

/// RAII span guard from [`ActiveTrace::span`]: records the elapsed time
/// against its stage on drop, so early returns are still measured.
#[derive(Debug)]
pub struct SpanTimer<'a> {
    trace: &'a ActiveTrace,
    stage: Stage,
    started: Instant,
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        self.trace.record(self.stage, self.started.elapsed());
    }
}

/// A completed, immutable trace as stored in the flight recorder and
/// rendered at `/debug/traces`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FinishedTrace {
    /// Process-unique trace ID.
    pub id: u64,
    /// Request path (query string excluded).
    pub path: String,
    /// Model that served the request, when one was involved.
    pub model: Option<String>,
    /// HTTP status of the response (0 when the connection died first).
    pub status: u16,
    /// End-to-end wall time, parse start → finish.
    pub total_micros: u64,
    /// Per-stage microseconds, indexed by [`Stage::index`].
    pub stage_micros: [u64; Stage::COUNT],
    /// `tsg_faults::injected_total()` delta over the request's lifetime.
    pub faults_injected: u64,
    /// Recorder insertion order (assigned by [`FlightRecorder::record`]);
    /// lower `seq` values are evicted first when the ring wraps.
    pub seq: u64,
}

impl FinishedTrace {
    /// Microseconds recorded for one stage.
    pub fn stage(&self, stage: Stage) -> u64 {
        self.stage_micros.get(stage.index()).copied().unwrap_or(0)
    }

    /// Sum of all stage spans — ≤ `total_micros` by construction (stages
    /// are disjoint sub-intervals of the request lifetime).
    pub fn stage_sum_micros(&self) -> u64 {
        self.stage_micros.iter().sum()
    }
}

fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // a panicking holder poisons the lock but not the data: a trace slot
    // is a plain value, so recovery is always sound here
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A bounded ring buffer of the most recent [`FinishedTrace`]s.
///
/// `record` claims a slot with a lock-free cursor (`fetch_add`) and takes
/// only that slot's lock — writers racing on *different* requests touch
/// different slots, and a reader (`/debug/traces`) contends for at most
/// one slot at a time. When full, the oldest trace (lowest `seq`) is
/// overwritten first.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Box<[Mutex<Option<FinishedTrace>>]>,
    cursor: AtomicU64,
}

impl FlightRecorder {
    /// A recorder holding the last `capacity` traces (minimum 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let slots: Vec<Mutex<Option<FinishedTrace>>> =
            (0..capacity.max(1)).map(|_| Mutex::new(None)).collect();
        FlightRecorder {
            slots: slots.into_boxed_slice(),
            cursor: AtomicU64::new(0),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total traces ever recorded (monotonic; `recorded_total() -
    /// capacity()` traces have been evicted, when positive).
    pub fn recorded_total(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Stores a finished trace, stamping its `seq` with the insertion
    /// order and evicting the oldest entry once the ring is full.
    pub fn record(&self, mut trace: FinishedTrace) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        trace.seq = seq;
        let index = (seq % self.slots.len() as u64) as usize;
        if let Some(slot) = self.slots.get(index) {
            *lock_recover(slot) = Some(trace);
        }
    }

    /// All currently-held traces, oldest first (ascending `seq`).
    pub fn snapshot(&self) -> Vec<FinishedTrace> {
        let mut out: Vec<FinishedTrace> = self
            .slots
            .iter()
            .filter_map(|slot| lock_recover(slot).clone())
            .collect();
        out.sort_by_key(|t| t.seq);
        out
    }

    /// Looks up one trace by ID, if it is still in the ring.
    pub fn find(&self, id: u64) -> Option<FinishedTrace> {
        self.slots
            .iter()
            .filter_map(|slot| lock_recover(slot).clone())
            .find(|t| t.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finished(total: u64) -> FinishedTrace {
        FinishedTrace {
            id: 0,
            path: "/test".to_string(),
            model: None,
            status: 200,
            total_micros: total,
            stage_micros: [0; Stage::COUNT],
            faults_injected: 0,
            seq: 0,
        }
    }

    #[test]
    fn stage_names_and_indices_are_stable() {
        assert_eq!(Stage::ALL.len(), Stage::COUNT);
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
        }
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.as_str()).collect();
        assert_eq!(
            names,
            [
                "parse",
                "queue_wait",
                "batch_coalesce",
                "scale",
                "graph_build",
                "motif_count",
                "statistical",
                "predict",
                "serialize",
                "write_out"
            ]
        );
    }

    #[test]
    fn trace_ids_are_unique_across_threads() {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    (0..250)
                        .map(|_| ActiveTrace::begin("/x", 0).id())
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        let mut ids: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("id thread"))
            .collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "trace IDs collided");
    }

    #[test]
    fn stage_accounting_accumulates_and_freezes() {
        let trace = ActiveTrace::begin("/models/m/classify", 3);
        trace.add_micros(Stage::Parse, 10);
        trace.add_micros(Stage::MotifCount, 5);
        trace.add_micros(Stage::MotifCount, 7);
        trace.set_model("m");
        trace.set_status(200);
        let done = trace.finish(5);
        assert_eq!(done.stage(Stage::Parse), 10);
        assert_eq!(done.stage(Stage::MotifCount), 12);
        assert_eq!(done.stage(Stage::Predict), 0);
        assert_eq!(done.model.as_deref(), Some("m"));
        assert_eq!(done.status, 200);
        assert_eq!(done.faults_injected, 2);
        assert_eq!(done.stage_sum_micros(), 22);
    }

    #[test]
    fn span_timer_records_on_drop() {
        let trace = ActiveTrace::begin("/x", 0);
        {
            let _span = trace.span(Stage::Serialize);
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(trace.finish(0).stage(Stage::Serialize) >= 1_000);
    }

    #[test]
    fn stage_set_flush_is_one_shot_per_stage() {
        let mut set = StageSet::default();
        assert!(set.is_empty());
        set.add(Stage::Scale, 4);
        set.add(Stage::Scale, 6);
        set.add(Stage::GraphBuild, 11);
        assert!(!set.is_empty());
        assert_eq!(set.get(Stage::Scale), 10);
        let trace = ActiveTrace::begin("/x", 0);
        set.flush(&trace);
        set.flush(&trace); // flushing twice doubles — callers flush once
        let done = trace.finish(0);
        assert_eq!(done.stage(Stage::Scale), 20);
        assert_eq!(done.stage(Stage::GraphBuild), 22);
    }

    #[test]
    fn ring_wraps_and_evicts_oldest_first() {
        let recorder = FlightRecorder::new(4);
        assert_eq!(recorder.capacity(), 4);
        for i in 0..10u64 {
            recorder.record(finished(i));
        }
        assert_eq!(recorder.recorded_total(), 10);
        let held = recorder.snapshot();
        // the ring holds exactly the last 4, oldest first: seqs 6..=9
        assert_eq!(held.len(), 4);
        let seqs: Vec<u64> = held.iter().map(|t| t.seq).collect();
        assert_eq!(seqs, [6, 7, 8, 9]);
        let totals: Vec<u64> = held.iter().map(|t| t.total_micros).collect();
        assert_eq!(totals, [6, 7, 8, 9]);
    }

    #[test]
    fn find_locates_live_traces_and_misses_evicted_ones() {
        let recorder = FlightRecorder::new(2);
        let a = ActiveTrace::begin("/a", 0);
        let b = ActiveTrace::begin("/b", 0);
        let c = ActiveTrace::begin("/c", 0);
        recorder.record(a.finish(0));
        recorder.record(b.finish(0));
        recorder.record(c.finish(0)); // evicts a
        assert!(recorder.find(a.id()).is_none());
        assert_eq!(recorder.find(b.id()).map(|t| t.path), Some("/b".into()));
        assert_eq!(recorder.find(c.id()).map(|t| t.path), Some("/c".into()));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let recorder = FlightRecorder::new(0);
        assert_eq!(recorder.capacity(), 1);
        recorder.record(finished(1));
        recorder.record(finished(2));
        assert_eq!(recorder.snapshot().len(), 1);
    }
}
