//! Structured, leveled, JSON-lines logging for the serving stack.
//!
//! One log record is one JSON object on one stderr line:
//!
//! ```json
//! {"ts_micros":1754550000123456,"level":"warn","target":"registry",
//!  "msg":"skipping snapshot /tmp/x.snap: bad hash","trace_id":"00000000000000a3"}
//! ```
//!
//! The level filter comes from `TSG_LOG` (`off`, `error`, `warn`, `info`,
//! `debug`, `trace`; default `info`), read once by [`init_from_env`] at
//! process start — the one sanctioned env read, registered with the
//! analyzer's `env-discipline` entry points. Records carry the request's
//! trace ID when one is in scope, so a log line and its `/debug/traces`
//! entry join on the same key.
//!
//! Plain functions, not macros: the call sites are few and the workspace
//! style prefers visible control flow over macro indirection. Formatting
//! cost is only paid for records that pass the level filter.

use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Error = 1,
    Warn = 2,
    Info = 3,
    Debug = 4,
    Trace = 5,
}

impl Level {
    /// The lowercase name used on the wire and in `TSG_LOG`.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

/// Maximum level that gets emitted; `0` silences everything (`off`).
/// Defaults to `info` so operational warnings are visible out of the box.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

fn parse_spec(spec: &str) -> Option<u8> {
    match spec.trim().to_ascii_lowercase().as_str() {
        "off" | "none" => Some(0),
        "error" => Some(Level::Error as u8),
        "warn" | "warning" => Some(Level::Warn as u8),
        "info" => Some(Level::Info as u8),
        "debug" => Some(Level::Debug as u8),
        "trace" => Some(Level::Trace as u8),
        _ => None,
    }
}

/// Reads `TSG_LOG` and installs the level filter. Call once at process
/// start (the binaries do); an unknown value keeps the default and says
/// so at `warn` — a misspelled filter must not silently mute the logs.
pub fn init_from_env() {
    if let Ok(spec) = std::env::var("TSG_LOG") {
        match parse_spec(&spec) {
            Some(max) => MAX_LEVEL.store(max, Ordering::Relaxed),
            None => warn(
                "log",
                &format!("unknown TSG_LOG level `{spec}` (want off|error|warn|info|debug|trace)"),
                None,
                &[],
            ),
        }
    }
}

/// Overrides the level filter programmatically (`None` = off). Mostly for
/// tests; production configuration goes through [`init_from_env`].
pub fn set_max_level(level: Option<Level>) {
    MAX_LEVEL.store(level.map(|l| l as u8).unwrap_or(0), Ordering::Relaxed);
}

/// True when a record at `level` would be emitted.
pub fn enabled(level: Level) -> bool {
    (level as u8) <= MAX_LEVEL.load(Ordering::Relaxed)
}

fn escape_into(out: &mut String, text: &str) {
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders one record as a JSON line (without emitting it) — separated
/// from [`log`] so the format is unit-testable without capturing stderr.
fn render_line(
    ts_micros: u64,
    level: Level,
    target: &str,
    msg: &str,
    trace_id: Option<u64>,
    fields: &[(&str, &str)],
) -> String {
    let mut line = String::with_capacity(96 + msg.len());
    line.push_str("{\"ts_micros\":");
    line.push_str(&ts_micros.to_string());
    line.push_str(",\"level\":\"");
    line.push_str(level.as_str());
    line.push_str("\",\"target\":\"");
    escape_into(&mut line, target);
    line.push_str("\",\"msg\":\"");
    escape_into(&mut line, msg);
    line.push('"');
    if let Some(id) = trace_id {
        line.push_str(&format!(",\"trace_id\":\"{id:016x}\""));
    }
    for (key, value) in fields {
        line.push_str(",\"");
        escape_into(&mut line, key);
        line.push_str("\":\"");
        escape_into(&mut line, value);
        line.push('"');
    }
    line.push_str("}\n");
    line
}

/// Emits one structured record to stderr if `level` passes the filter.
/// `fields` are extra string key/value pairs appended to the object.
pub fn log(level: Level, target: &str, msg: &str, trace_id: Option<u64>, fields: &[(&str, &str)]) {
    if !enabled(level) {
        return;
    }
    let ts_micros = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    let line = render_line(ts_micros, level, target, msg, trace_id, fields);
    // one write_all per record: lines from concurrent threads interleave
    // whole, never torn mid-object
    let _ = std::io::stderr().lock().write_all(line.as_bytes());
}

/// [`log`] at [`Level::Error`].
pub fn error(target: &str, msg: &str, trace_id: Option<u64>, fields: &[(&str, &str)]) {
    log(Level::Error, target, msg, trace_id, fields);
}

/// [`log`] at [`Level::Warn`].
pub fn warn(target: &str, msg: &str, trace_id: Option<u64>, fields: &[(&str, &str)]) {
    log(Level::Warn, target, msg, trace_id, fields);
}

/// [`log`] at [`Level::Info`].
pub fn info(target: &str, msg: &str, trace_id: Option<u64>, fields: &[(&str, &str)]) {
    log(Level::Info, target, msg, trace_id, fields);
}

/// [`log`] at [`Level::Debug`].
pub fn debug(target: &str, msg: &str, trace_id: Option<u64>, fields: &[(&str, &str)]) {
    log(Level::Debug, target, msg, trace_id, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_specs_parse_case_insensitively() {
        assert_eq!(parse_spec("off"), Some(0));
        assert_eq!(parse_spec("ERROR"), Some(1));
        assert_eq!(parse_spec(" Warn "), Some(2));
        assert_eq!(parse_spec("info"), Some(3));
        assert_eq!(parse_spec("debug"), Some(4));
        assert_eq!(parse_spec("trace"), Some(5));
        assert_eq!(parse_spec("verbose"), None);
    }

    #[test]
    fn records_render_as_single_json_lines() {
        let line = render_line(
            123,
            Level::Warn,
            "registry",
            "skipping snapshot",
            Some(0xa3),
            &[("path", "/tmp/x.snap")],
        );
        assert_eq!(
            line,
            "{\"ts_micros\":123,\"level\":\"warn\",\"target\":\"registry\",\
             \"msg\":\"skipping snapshot\",\"trace_id\":\"00000000000000a3\",\
             \"path\":\"/tmp/x.snap\"}\n"
        );
    }

    #[test]
    fn messages_are_json_escaped() {
        let line = render_line(0, Level::Info, "t", "a \"quoted\"\npath\\x\u{1}", None, &[]);
        assert!(line.contains("a \\\"quoted\\\"\\npath\\\\x\\u0001"));
        // exactly one line, ending in a newline
        assert_eq!(line.matches('\n').count(), 1);
        assert!(line.ends_with("}\n"));
    }

    #[test]
    fn the_filter_gates_by_severity() {
        set_max_level(Some(Level::Warn));
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        set_max_level(None);
        assert!(!enabled(Level::Error));
        set_max_level(Some(Level::Info));
    }
}
